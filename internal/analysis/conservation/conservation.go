// Package conservation enforces the engine's packet-conservation
// ledger at the type level. The serving engine's core claim — every
// offered packet is served, shed, or lost to a fault, with nothing
// unaccounted (DESIGN.md §12, EXPERIMENTS.md shed accounting) — is an
// arithmetic identity over a handful of counters. The identity only
// holds if every counter in it is mutated race-free and every new
// counter either joins the identity or is explicitly excused.
//
// Three rules, applied to the engine package:
//
//  1. Unexported ledger fields (inserted, extracted, faultLost,
//     drainShed, ghostDrops, remapped, evacuated) on any engine-package
//     struct must be sync/atomic types: the ledger is kept per lane on
//     the datapath workers, written by each lane goroutine and read by
//     every Stats scrape. Exported ledger-named fields (the LaneLedger
//     and Stats snapshot rows) are copies, not live counters, and are
//     exempt.
//  2. No plain store or increment of an unexported ledger field through
//     any engine-package value — mutation goes through atomic ops on
//     the owning lane goroutine.
//  3. Every uint64 counter on the Stats snapshot must be referenced by
//     a Conservation* method on Stats (the machine-checkable form of
//     the identity) or carry a justified
//     //wfqlint:ignore conservation exemption on its declaration:
//     a counter outside the assertion is a number nobody can audit.
package conservation

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wfqsort/internal/analysis"
)

// Analyzer is the conservation analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "conservation",
	Doc: "conservation-ledger counters are atomic, mutated only via " +
		"atomic ops, and every Stats counter joins the conservation " +
		"assertion or carries a justified exemption",
	Run: run,
}

// EnginePackage is the package the ledger lives in. Tests load testdata
// under this path.
const EnginePackage = "wfqsort/internal/engine"

// ledger is the conservation identity's counter set, keyed by
// lower-cased field name so the unexported worker fields and exported
// Stats fields match the same entry.
var ledger = map[string]bool{
	"inserted":   true,
	"extracted":  true,
	"removed":    true,
	"faultlost":  true,
	"drainshed":  true,
	"ghostdrops": true,
	"remapped":   true,
	"evacuated":  true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != EnginePackage {
		return nil
	}
	checkEngineFields(pass)
	checkLedgerStores(pass)
	checkStatsCoverage(pass)
	return nil
}

// structFields returns the AST field list of the package-level struct
// type named name, or nil.
func structFields(pass *analysis.Pass, name string) *ast.FieldList {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st.Fields
				}
			}
		}
	}
	return nil
}

// isAtomicType reports whether t is declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	n, ok := analysis.Deref(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isLiveLedgerField reports whether name is an unexported ledger
// counter — a live counter some datapath goroutine mutates. Exported
// ledger-named fields are snapshot copies (Stats, LaneLedger) and stay
// out of rules 1 and 2.
func isLiveLedgerField(name string) bool {
	return !ast.IsExported(name) && ledger[strings.ToLower(name)]
}

// checkEngineFields enforces rule 1: unexported ledger fields on any
// engine-package struct are atomic. The rule follows the fields, not a
// struct name, because the ledger lives on the per-lane workers.
func checkEngineFields(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if !isLiveLedgerField(name.Name) {
							continue
						}
						if t := pass.TypeOf(fld.Type); t != nil && !isAtomicType(t) {
							pass.Reportf(name.Pos(),
								"conservation counter %q must be a sync/atomic type: the datapath writes it while Stats scrapes read it",
								name.Name)
						}
					}
				}
			}
		}
	}
}

// checkLedgerStores enforces rule 2: no plain store/increment of an
// unexported ledger field through any value of an engine-package type.
func checkLedgerStores(pass *analysis.Pass) {
	flag := func(e ast.Expr) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || !isLiveLedgerField(sel.Sel.Name) {
			return
		}
		recv := pass.TypeOf(sel.X)
		if recv == nil {
			return
		}
		n, ok := analysis.Deref(recv).(*types.Named)
		if !ok || n.Obj().Pkg() == nil ||
			n.Obj().Pkg().Path() != pass.Pkg.Path() {
			return
		}
		pass.Reportf(sel.Pos(),
			"conservation counter %q mutated by a plain store; use atomic ops inside the datapath critical section",
			sel.Sel.Name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					flag(lhs)
				}
			case *ast.IncDecStmt:
				flag(st.X)
			}
			return true
		})
	}
}

// checkStatsCoverage enforces rule 3: every uint64 Stats counter is
// referenced by a Conservation* method on Stats or carries a justified
// exemption directive (handled by the normal ignore machinery — the
// diagnostic lands on the field declaration).
func checkStatsCoverage(pass *analysis.Pass) {
	fields := structFields(pass, "Stats")
	if fields == nil {
		return
	}
	asserted := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil ||
				!strings.HasPrefix(fd.Name.Name, "Conservation") {
				continue
			}
			recv := fd.Recv.List[0].Type
			if t := pass.TypeOf(recv); t == nil || !analysis.IsNamed(t, pass.Pkg.Path(), "Stats") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.IsField() {
						asserted[v] = true
					}
				}
				return true
			})
		}
	}
	for _, f := range fields.List {
		ft := pass.TypeOf(f.Type)
		if ft == nil {
			continue
		}
		b, ok := ft.(*types.Basic)
		if !ok || b.Kind() != types.Uint64 {
			continue
		}
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || asserted[obj] {
				continue
			}
			pass.Reportf(name.Pos(),
				"Stats counter %q is outside the conservation assertion; reference it from a Conservation* method on Stats or justify an exemption directive",
				name.Name)
		}
	}
}
