// Package repro is determinism analyzer testdata.
package repro

import (
	"math/rand"
	"sort"
	"time"
)

// BadWallClock stamps results with host time.
func BadWallClock() int64 {
	return time.Now().UnixNano() // want `time.Now leaks wall-clock time`
}

// BadSince measures host-clock durations.
func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since leaks wall-clock time`
}

// GoodDuration only manipulates duration values, no clock read.
func GoodDuration(d time.Duration) float64 {
	return d.Seconds()
}

// BadGlobalRand draws from the shared global source.
func BadGlobalRand(n int) int {
	return rand.Intn(n) // want `rand.Intn draws from the global source`
}

// BadGlobalShuffle permutes with the global source.
func BadGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global source`
}

// GoodSeededRand draws from an injected, seeded source — the
// false-positive guard for the rand rule.
func GoodSeededRand(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// GoodNewSource constructs a seeded generator; constructors are legal.
func GoodNewSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// BadMapReturn selects an iteration-order-dependent entry.
func BadMapReturn(m map[int]int) (int, bool) {
	for k, v := range m {
		if v > 10 {
			return k, true // want `return inside a map range selects an iteration-order-dependent entry`
		}
	}
	return 0, false
}

// BadMapAppend bakes the random order into the result.
func BadMapAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `map iteration order leaks into "out"`
	}
	return out
}

// GoodMapAppendSorted collects then sorts — the false-positive guard
// for the map rule.
func GoodMapAppendSorted(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// GoodMapAccumulate folds order-insensitively; no diagnostic.
func GoodMapAccumulate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodSliceRange ranges over a slice; order is defined.
func GoodSliceRange(xs []int) (int, bool) {
	for _, v := range xs {
		if v > 10 {
			return v, true
		}
	}
	return 0, false
}

// JustifiedMapReturn suppresses with a reason: any entry is acceptable.
func JustifiedMapReturn(m map[int]int) (int, bool) {
	for k := range m {
		//wfqlint:ignore determinism any key works: the caller only probes non-emptiness
		return k, true
	}
	return 0, false
}
