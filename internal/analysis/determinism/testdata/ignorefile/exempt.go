// Package ignorefile is determinism analyzer testdata for the file-scope
// suppression directive: every diagnostic in this file is suppressed by
// the header, while flagged.go (same package, no header) still reports.
//
//wfqlint:ignore-file determinism this file models a wall-clock serving loop by design
package ignorefile

import (
	"math/rand"
	"time"
)

// ExemptWallClock would be flagged without the file header.
func ExemptWallClock() int64 {
	return time.Now().UnixNano()
}

// ExemptSince would be flagged without the file header.
func ExemptSince(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// ExemptGlobalRand would be flagged without the file header.
func ExemptGlobalRand(n int) int {
	return rand.Intn(n)
}
