package ignorefile

import "time"

// FlaggedWallClock sits in the same package as exempt.go but a
// different file: the ignore-file directive must not leak across file
// boundaries.
func FlaggedWallClock() int64 {
	return time.Now().UnixNano() // want `time.Now leaks wall-clock time`
}
