// Package determinism enforces seed-reproducibility of the simulator:
// the paper's results are stated per workload and must be bit-identical
// across runs of the same seed, or fault campaigns and regression
// comparisons are meaningless.
//
// Three leak classes are flagged:
//
//  1. Wall-clock time (time.Now/Since/Until) — simulation time is the
//     hwsim.Clock cycle counter and virtual time, never the host clock.
//  2. The global math/rand source (rand.Intn etc. without an explicit
//     *rand.Rand) — all randomness must flow from an injected,
//     explicitly seeded *rand.Rand so a seed reproduces a run.
//  3. Map iteration whose order can escape: a range over a map that
//     returns from inside the loop (first-match selection) or appends
//     to an outer slice that is never sorted afterwards. Go randomizes
//     map order per run, so either pattern makes output, error
//     selection, or — worse — the memory access sequence (which decides
//     which access a fault campaign hits) differ run to run.
package determinism

import (
	"go/ast"
	"go/types"

	"wfqsort/internal/analysis"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "no wall-clock time, no global math/rand, no map-range whose " +
		"iteration order can leak into results",
	Run: run,
}

// globalRandFuncs are the math/rand package-level functions that read
// the shared global source. Constructors (New, NewSource) are fine.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s leaks wall-clock time into the simulation; use the hwsim.Clock cycle counter or virtual time", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"rand.%s draws from the global source; inject a seeded *rand.Rand so runs reproduce by seed", fn.Name())
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

// checkMapRange applies the order-escape heuristics to one range loop.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// Heuristic 1: a return inside the loop selects whichever entry the
	// runtime happens to surface first.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate control flow
		case *ast.ReturnStmt:
			pass.Reportf(n.Pos(),
				"return inside a map range selects an iteration-order-dependent entry; iterate sorted keys (or justify with a wfqlint:ignore)")
			return false
		}
		return true
	})
	// Heuristic 2: appending map entries to an outer slice bakes the
	// random order into a result unless the slice is sorted afterwards.
	appended := map[*types.Var][]ast.Node{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			v := rootVar(pass, as.Lhs[i])
			if v == nil {
				continue
			}
			// Only variables declared outside the loop can carry the
			// order out of it.
			if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
				continue
			}
			appended[v] = append(appended[v], as)
		}
		return true
	})
	for v, sites := range appended {
		if sortedAfter(pass, fd, rng, v) {
			delete(appended, v)
			continue
		}
		for _, site := range sites {
			pass.Reportf(site.Pos(),
				"map iteration order leaks into %q, which is never sorted afterwards; sort the slice (or the keys first)", v.Name())
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootVar resolves the variable at the base of an lvalue expression
// (x, x.f, x[i] all resolve to x).
func rootVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := pass.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			v, _ := pass.ObjectOf(x.Sel).(*types.Var)
			return v
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortFuncs are recognized sorting calls: a slice passed (or captured)
// by one of these after the loop neutralizes the order leak.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Ints": true, "Strings": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether v is passed to a recognized sort call
// somewhere after the range loop in the enclosing function.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		byName := sortFuncs[fn.Pkg().Path()]
		if byName == nil || !byName[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if rootVar(pass, arg) == v {
				found = true
			}
			// sort.Slice(x, func(...){...}) has x as first arg; also
			// accept the variable appearing inside a comparator closure
			// argument (sort.Slice(byName, func(i, j int) bool {...})).
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if pv, _ := pass.ObjectOf(id).(*types.Var); pv == v {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}
