package determinism_test

import (
	"path/filepath"
	"testing"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	dir := filepath.Join("testdata", "repro")
	analysis.RunTest(t, dir, "wfqsort/internal/determinism_testdata", determinism.Analyzer)
}

// TestDeterminismIgnoreFile exercises the //wfqlint:ignore-file
// directive: exempt.go carries the header and reports nothing despite
// wall-clock and global-rand calls, while flagged.go in the same
// package still reports.
func TestDeterminismIgnoreFile(t *testing.T) {
	dir := filepath.Join("testdata", "ignorefile")
	analysis.RunTest(t, dir, "wfqsort/internal/ignorefile_testdata", determinism.Analyzer)
}
