package determinism_test

import (
	"path/filepath"
	"testing"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	dir := filepath.Join("testdata", "repro")
	analysis.RunTest(t, dir, "wfqsort/internal/determinism_testdata", determinism.Analyzer)
}
