package portseam_test

import (
	"path/filepath"
	"testing"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/portseam"
)

func TestPortseam(t *testing.T) {
	dir := filepath.Join("testdata", "datapath")
	// Load the testdata under a datapath import path so the invariant
	// applies to it.
	analysis.RunTest(t, dir, "wfqsort/internal/taglist", portseam.Analyzer)
}

func TestPortseamScope(t *testing.T) {
	// The same sources loaded under a non-datapath path produce no
	// diagnostics: infrastructure (hwsim, membus, fault, benches) may
	// hold raw memories.
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "datapath"), "wfqsort/internal/notdatapath")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{portseam.Analyzer}, pkg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, first: %s", len(diags), diags[0])
	}
}
