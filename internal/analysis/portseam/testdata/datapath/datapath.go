// Package datapath is portseam analyzer testdata. It is loaded by the
// test harness under a datapath import path so the invariant applies.
package datapath

import (
	"wfqsort/internal/hwsim"
	"wfqsort/internal/membus"
)

// Structure models a datapath structure holding a fabric port (legal),
// a raw SRAM handle, and a Store-typed field (both illegal to drive).
type Structure struct {
	port  *membus.Port
	mem   *hwsim.SRAM
	store hwsim.Store
}

// Good drives the fabric port: scheduled, counted, observable.
func (s *Structure) Good() error {
	w, err := s.port.Read(0)
	if err != nil {
		return err
	}
	return s.port.Write(1, w)
}

// BadConstruct builds a private memory outside the fabric.
func BadConstruct(clock *hwsim.Clock) (*hwsim.SRAM, error) {
	return hwsim.NewSRAM(hwsim.SRAMConfig{Name: "rogue", Depth: 4, WordBits: 8}, clock) // want `datapath constructs a private hwsim memory via NewSRAM`
}

// BadConstructRegisters builds a private register file.
func BadConstructRegisters() (*hwsim.RegisterFile, error) {
	return hwsim.NewRegisterFile("rogue-regs", 4, 8) // want `datapath constructs a private hwsim memory via NewRegisterFile`
}

// BadRawRead drives the raw SRAM handle around the arbiter.
func (s *Structure) BadRawRead() (uint64, error) {
	return s.mem.Read(0) // want `Read on wfqsort/internal/hwsim\.SRAM bypasses the fabric port arbiter`
}

// BadStoreWrite drives the legacy Store seam around the arbiter.
func (s *Structure) BadStoreWrite() error {
	return s.store.Write(0, 1) // want `Write on wfqsort/internal/hwsim\.Store bypasses the fabric port arbiter`
}
