// Package portseam enforces the fabric-port invariant of the banked
// memory model: functional datapath code must address memory
// exclusively through *membus.Port — the arbitrated functional port of
// a fabric region — never by constructing raw hwsim memories and never
// by issuing Read/Write on the hwsim.SRAM, hwsim.RegisterFile, or
// hwsim.Store seam directly.
//
// The port is what makes the fabric's guarantees hold: every access
// that reaches a region through its Port is scheduled by the per-cycle
// bank/port arbiter (so window lengths are derived, not hand-charged),
// counted in the per-bank statistics, and exposed to the fault
// observer with its bank/port/cycle coordinates. A datapath package
// that news up its own SRAM or calls Read on a Store-typed field has
// silently re-opened the private-memory escape hatch this refactor
// closed: its traffic dodges the arbiter, the stall accounting, and
// every fault campaign.
package portseam

import (
	"go/ast"
	"go/types"

	"wfqsort/internal/analysis"
)

// HwsimPath is the import path of the raw hardware-model package.
const HwsimPath = "wfqsort/internal/hwsim"

// MembusPath is the import path of the memory fabric whose Port type is
// the only legal functional access path.
const MembusPath = "wfqsort/internal/membus"

// DatapathPackages lists the functional datapath packages the invariant
// applies to. Tests may add testdata packages loaded under these paths.
var DatapathPackages = map[string]bool{
	"wfqsort/internal/trie":       true,
	"wfqsort/internal/taglist":    true,
	"wfqsort/internal/transtable": true,
	"wfqsort/internal/core":       true,
}

// rawConstructors are the hwsim package-level constructors a datapath
// package must not call: memory is provisioned from the lane fabric.
var rawConstructors = map[string]bool{
	"NewSRAM":             true,
	"MustNewSRAM":         true,
	"NewRegisterFile":     true,
	"MustNewRegisterFile": true,
}

// Analyzer is the portseam analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "portseam",
	Doc: "functional datapath memory traffic goes through *membus.Port; " +
		"no raw hwsim memory construction or hwsim-typed Read/Write",
	Run: run,
}

// hwsimBacked reports whether t is a type whose Read/Write dodges the
// fabric arbiter: the raw memory models or the hwsim.Store interface.
func hwsimBacked(t types.Type) bool {
	return analysis.IsNamed(t, HwsimPath, "SRAM") ||
		analysis.IsNamed(t, HwsimPath, "RegisterFile") ||
		analysis.IsNamed(t, HwsimPath, "Store")
}

func run(pass *analysis.Pass) error {
	if !DatapathPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() == nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == HwsimPath && rawConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"datapath constructs a private hwsim memory via %s; provision a membus.Region from the fabric and use its Port",
						fn.Name())
				}
				return true
			}
			if fn.Name() != "Read" && fn.Name() != "Write" {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := pass.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			if hwsimBacked(recv) {
				pass.Reportf(call.Pos(),
					"%s on %s bypasses the fabric port arbiter (unscheduled, unobserved access); route datapath traffic through *membus.Port",
					fn.Name(), analysis.Deref(recv).String())
			}
			return true
		})
	}
	return nil
}
