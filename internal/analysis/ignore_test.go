package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePass parses src under filename src.go and returns a Pass for an
// analyzer named name, ready for buildIgnores.
func parsePass(t *testing.T, name, src string) (*Pass, *[]Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags := &[]Diagnostic{}
	return &Pass{
		Analyzer: &Analyzer{Name: name},
		Fset:     fset,
		Files:    []*ast.File{f},
		diags:    diags,
	}, diags
}

func TestIgnoreFileDirective(t *testing.T) {
	const src = `//wfqlint:ignore-file determinism wall-clock by design
package p

func F() {}
`
	p, diags := parsePass(t, "determinism", src)
	p.buildIgnores()
	if len(*diags) != 0 {
		t.Fatalf("unexpected diagnostics from buildIgnores: %v", *diags)
	}
	pos := token.Position{Filename: "src.go", Line: 4}
	if !p.ignored(pos) {
		t.Errorf("line 4 not suppressed by file-scope directive")
	}
	if p.ignored(token.Position{Filename: "other.go", Line: 4}) {
		t.Errorf("file-scope directive leaked into other.go")
	}

	// The directive names one analyzer; others must still report.
	q, _ := parsePass(t, "storeseam", src)
	q.buildIgnores()
	if q.ignored(pos) {
		t.Errorf("determinism-only directive suppressed storeseam")
	}
}

func TestIgnoreFileDirectiveAll(t *testing.T) {
	const src = `//wfqlint:ignore-file all generated harness code
package p
`
	p, _ := parsePass(t, "cyclecharge", src)
	p.buildIgnores()
	if !p.ignored(token.Position{Filename: "src.go", Line: 2}) {
		t.Errorf(`"all" file-scope directive did not suppress cyclecharge`)
	}
}

func TestIgnoreFileDirectiveRequiresReason(t *testing.T) {
	const src = `//wfqlint:ignore-file determinism
package p
`
	p, diags := parsePass(t, "determinism", src)
	p.buildIgnores()
	if len(*diags) != 1 || !strings.Contains((*diags)[0].Message, "without a justification") {
		t.Fatalf("diagnostics = %v, want one unjustified-directive report", *diags)
	}
	if p.ignored(token.Position{Filename: "src.go", Line: 2}) {
		t.Errorf("unjustified directive must not suppress anything")
	}
}

func TestIgnoreLineDirectiveStillScoped(t *testing.T) {
	const src = `package p

//wfqlint:ignore determinism only this statement is wall-clock
var A = 1
var B = 2
`
	p, diags := parsePass(t, "determinism", src)
	p.buildIgnores()
	if len(*diags) != 0 {
		t.Fatalf("unexpected diagnostics from buildIgnores: %v", *diags)
	}
	if !p.ignored(token.Position{Filename: "src.go", Line: 4}) {
		t.Errorf("line below the directive not suppressed")
	}
	if p.ignored(token.Position{Filename: "src.go", Line: 5}) {
		t.Errorf("line-scoped directive suppressed two lines below")
	}
}
