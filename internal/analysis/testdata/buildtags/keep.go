// Package buildtags is loader testdata: one symbol per buildable file,
// and deliberately redeclared symbols in the excluded files, so a
// loader that mis-evaluates a //go:build line fails type-check loudly.
package buildtags

// Keep is defined in the unconstrained file.
func Keep() int { return 1 }
