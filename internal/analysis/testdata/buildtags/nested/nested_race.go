//go:build race

package nested

// Value redeclared: inclusion of this file is a loader bug.
func Value() int { return -42 }
