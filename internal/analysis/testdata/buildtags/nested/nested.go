//go:build go1.18

// Package nested checks constraint evaluation below the top fixture
// level: nested testdata packages load independently.
package nested

// Value is served from the constraint-true file.
func Value() int { return 42 }
