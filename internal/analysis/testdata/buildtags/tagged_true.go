//go:build go1.18 && (unix || windows)

package buildtags

// KeepTagged is defined in a file whose constraint evaluates true on
// every supported host.
func KeepTagged() int { return Keep() + 1 }
