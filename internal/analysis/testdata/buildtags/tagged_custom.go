//go:build wfqlint_never_set

package buildtags

// KeepTagged redeclares the tagged-true symbol under a custom tag the
// loader must treat as unset.
func KeepTagged() int { return -1 }
