//go:build race

package buildtags

// Keep redeclares the unconstrained symbol: if the loader wrongly
// includes the race half of the pair, type-checking fails.
func Keep() int { return -1 }
