package ignorefile

// Flagged lives in the bare file: the sibling's file-scope directive
// must not reach it.
func Flagged() int { return 2 }
