//go:build wfqlint_never_set

package ignorefile

// Excluded is behind an unset custom tag: if the loader includes this
// file, the probe fires on it and the containment test fails.
func Excluded() int { return 3 }
