//wfqlint:ignore-file probe this file is excused as containment testdata

// Package ignorefile is directive-containment testdata: the probe
// analyzer fires once per file, and only this file's directive may
// swallow its finding.
package ignorefile

// Excused lives in the directive-carrying file.
func Excused() int { return 1 }
