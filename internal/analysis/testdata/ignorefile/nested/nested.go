// Package nested sits below a directive-carrying package: the parent's
// file-scope directive must not leak down here.
package nested

// Open is flagged by the probe: no directive covers this package.
func Open() int { return 4 }
