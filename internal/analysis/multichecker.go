package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CheckResult is the outcome of a multichecker run.
type CheckResult struct {
	// Diagnostics from every analyzed package, sorted by position.
	Diagnostics []Diagnostic
	// Packages is the number of packages analyzed.
	Packages int
}

// Check expands the given package patterns (import paths relative to the
// working directory, with the "./..." wildcard), loads each package, and
// applies every analyzer. It is the engine behind cmd/wfqlint.
func Check(analyzers []*Analyzer, dir string, patterns []string) (*CheckResult, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(l, dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &CheckResult{}
	for _, d := range dirs {
		rel, err := filepath.Rel(l.ModRoot, d)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(d, pkgPath)
		if err != nil {
			return nil, err
		}
		diags, err := Run(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Packages++
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// expandPatterns resolves package patterns to package directories.
// Supported forms: "./...", "dir/...", "./dir", "dir", and a bare module
// import path. Directories named testdata, vendor, or starting with "."
// or "_" are never walked into.
func expandPatterns(l *Loader, base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if full, ok := strings.CutPrefix(pat, l.ModPath); ok && (full == "" || full[0] == '/') {
			pat = "." + full
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if abs, err := filepath.Abs(root); err == nil {
			root = abs
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
