package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CheckResult is the outcome of a multichecker run.
type CheckResult struct {
	// Diagnostics from every analyzed package, sorted by position.
	Diagnostics []Diagnostic
	// Packages is the number of packages analyzed.
	Packages int
	// Directives is every suppression directive parsed across all
	// packages, with usage bits (position-sorted).
	Directives []*Directive
}

// Budget returns the suppression budget: how many justified directives
// name each analyzer (the "all" wildcard counts under "all").
func (r *CheckResult) Budget() map[string]int {
	b := map[string]int{}
	for _, d := range r.Directives {
		b[d.Analyzer]++
	}
	return b
}

// Stale returns the directives that suppressed nothing during the run
// and whose named analyzer actually ran (ran lists the analyzer names;
// a directive naming an analyzer outside the full known set is always
// stale — it can never suppress anything). Stale directives are CI
// failures: either the finding they excused is gone, or the name is a
// typo and something real is being silently waved through.
func (r *CheckResult) Stale(ran, known []string) []*Directive {
	ranSet := map[string]bool{}
	for _, n := range ran {
		ranSet[n] = true
	}
	knownSet := map[string]bool{"all": true, "directive": true}
	for _, n := range known {
		knownSet[n] = true
	}
	var stale []*Directive
	for _, d := range r.Directives {
		if d.Used {
			continue
		}
		if d.Analyzer == "all" || ranSet[d.Analyzer] || !knownSet[d.Analyzer] {
			stale = append(stale, d)
		}
	}
	return stale
}

// Check expands the given package patterns (import paths relative to the
// working directory, with the "./..." wildcard), loads each package, and
// applies every analyzer. It is the engine behind cmd/wfqlint.
func Check(analyzers []*Analyzer, dir string, patterns []string) (*CheckResult, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(l, dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &CheckResult{}
	for _, d := range dirs {
		rel, err := filepath.Rel(l.ModRoot, d)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(d, pkgPath)
		if err != nil {
			return nil, err
		}
		diags, dirs, err := RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Directives = append(res.Directives, dirs...)
		res.Packages++
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(res.Directives, func(i, j int) bool {
		a, b := res.Directives[i], res.Directives[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return res, nil
}

// expandPatterns resolves package patterns to package directories.
// Supported forms: "./...", "dir/...", "./dir", "dir", and a bare module
// import path. Directories named testdata, vendor, or starting with "."
// or "_" are never walked into.
func expandPatterns(l *Loader, base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if full, ok := strings.CutPrefix(pat, l.ModPath); ok && (full == "" || full[0] == '/') {
			pat = "." + full
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if abs, err := filepath.Abs(root); err == nil {
			root = abs
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
