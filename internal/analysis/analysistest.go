package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches the x/tools analysistest expectation syntax: one or
// more quoted regular expressions after a "// want" marker.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// RunTest loads the package in dir under the import path pkgPath,
// applies the analyzer, and compares the diagnostics against the
// `// want "regexp"` comments in the sources — the same contract as
// x/tools' analysistest.Run. Every diagnostic must be matched by a want
// on its line, and every want must match a diagnostic.
func RunTest(t *testing.T, dir, pkgPath string, a *Analyzer) {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := Run([]*Analyzer{a}, pkg)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					pat := arg[1]
					if pat == "" {
						pat = strings.ReplaceAll(arg[2], `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					k := key{filepath.Base(pos.Filename), pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	var missing []string
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}
