package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

func TestLoaderResolvesModuleAndStdlib(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModPath != "wfqsort" {
		t.Fatalf("module path = %q, want wfqsort", l.ModPath)
	}
	pkg, err := l.Load("wfqsort/internal/trie")
	if err != nil {
		t.Fatalf("Load trie: %v", err)
	}
	if pkg.Types.Name() != "trie" {
		t.Fatalf("package name = %q, want trie", pkg.Types.Name())
	}
	// The trie must have been type-checked against the real hwsim: its
	// Config struct carries a *hwsim.Clock field.
	obj := pkg.Types.Scope().Lookup("Config")
	if obj == nil {
		t.Fatal("trie.Config not found")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("trie.Config is %T, want struct", obj.Type().Underlying())
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Clock" && IsNamed(f.Type(), "wfqsort/internal/hwsim", "Clock") {
			found = true
		}
	}
	if !found {
		t.Fatal("trie.Config.Clock did not type-check as *hwsim.Clock")
	}
}

func TestCheckWalksPackages(t *testing.T) {
	res, err := Check(nil, filepath.Join("..", "hwsim"), []string{"./..."})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Packages != 1 {
		t.Fatalf("analyzed %d packages, want 1", res.Packages)
	}
}
