// Package wrap is errcorrupt analyzer testdata.
package wrap

import (
	"errors"
	"fmt"
	"strings"

	"wfqsort/internal/hwsim"
)

// ErrCorrupt re-exports the sentinel like core does; referencing it in
// comparisons is just as wrong as referencing hwsim's directly.
var ErrCorrupt = hwsim.ErrCorrupt

// GoodWrap wraps the sentinel with %w — the contract.
func GoodWrap(detail int) error {
	return fmt.Errorf("wrap: %w: node %d", hwsim.ErrCorrupt, detail)
}

// GoodIs classifies with errors.Is — the false-positive guard for the
// comparison rule.
func GoodIs(err error) bool {
	return errors.Is(err, hwsim.ErrCorrupt)
}

// GoodUnrelatedErrorf does not involve the sentinel at all.
func GoodUnrelatedErrorf(n int) error {
	return fmt.Errorf("wrap: %d out of range", n)
}

// BadNoVerb drops the sentinel from the wrap chain.
func BadNoVerb(detail int) error {
	return fmt.Errorf("wrap: %v: node %d", hwsim.ErrCorrupt, detail) // want `ErrCorrupt formatted without %w`
}

// BadEq compares by identity.
func BadEq(err error) bool {
	return err == hwsim.ErrCorrupt // want `comparing errors with == ErrCorrupt`
}

// BadNeqLocal compares the re-exported alias by identity.
func BadNeqLocal(err error) bool {
	return err != ErrCorrupt // want `comparing errors with != ErrCorrupt`
}

// BadStringMatch greps the error text.
func BadStringMatch(err error) bool {
	return strings.Contains(err.Error(), "corrupt state") // want `matching corruption by error text`
}

// BadTextEq compares the error text directly.
func BadTextEq(err error) bool {
	return err.Error() == "corrupt state" // want `matching corruption by error text "corrupt state"`
}

// BadNewSentinel mints a parallel sentinel outside hwsim.
var BadNewSentinel = errors.New("tree corrupted") // want `new corruption sentinel "tree corrupted" shadows hwsim.ErrCorrupt`

// JustifiedEq carries a reasoned suppression.
func JustifiedEq(err error) bool {
	//wfqlint:ignore errcorrupt identity check against the unwrapped sentinel at the raising site
	return err == hwsim.ErrCorrupt
}
