package errcorrupt_test

import (
	"path/filepath"
	"testing"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/errcorrupt"
)

func TestErrcorrupt(t *testing.T) {
	dir := filepath.Join("testdata", "wrap")
	analysis.RunTest(t, dir, "wfqsort/internal/errcorrupt_testdata", errcorrupt.Analyzer)
}
