// Package errcorrupt enforces the corruption-error contract established
// around hwsim.ErrCorrupt: every detected integrity violation wraps the
// sentinel with %w so that errors.Is(err, ErrCorrupt) holds across
// package boundaries, and detection code classifies errors with
// errors.Is — never with == identity comparison (which breaks the moment
// a layer wraps the error) and never by matching error text (which
// breaks the moment a message is reworded).
package errcorrupt

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wfqsort/internal/analysis"
)

// sentinelPackages defines the sentinel: the package allowed to create
// it and the re-export site.
var sentinelPackages = map[string]bool{
	"wfqsort/internal/hwsim": true,
	"wfqsort/internal/core":  true, // core.ErrCorrupt = hwsim.ErrCorrupt
}

// Analyzer is the errcorrupt analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errcorrupt",
	Doc: "corruption errors must wrap hwsim.ErrCorrupt with %w and be " +
		"classified with errors.Is, never == or string matching",
	Run: run,
}

// isSentinelRef reports whether e references a package-level error
// variable named ErrCorrupt.
func isSentinelRef(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	return ok && v.Name() == "ErrCorrupt" && v.Parent() != nil && v.Pkg() != nil &&
		v.Parent() == v.Pkg().Scope()
}

// errorCall reports whether e is a call of the error interface's
// Error() method.
func errorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && types.Implements(t, errorInterface())
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

func mentionsCorrupt(s string) bool {
	return strings.Contains(strings.ToLower(s), "corrupt")
}

func run(pass *analysis.Pass) error {
	inModule := strings.HasPrefix(pass.Pkg.Path(), "wfqsort")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n, inModule)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags == / != against the sentinel and error-text
// equality tests mentioning corruption.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isSentinelRef(pass.TypesInfo, b.X) || isSentinelRef(pass.TypesInfo, b.Y) {
		pass.Reportf(b.Pos(),
			"comparing errors with %s ErrCorrupt breaks once the error is wrapped; use errors.Is(err, ErrCorrupt)", b.Op)
		return
	}
	for _, pair := range [][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		if !errorCall(pass.TypesInfo, pair[0]) {
			continue
		}
		if s, ok := analysis.ConstString(pass.TypesInfo, pair[1]); ok && mentionsCorrupt(s) {
			pass.Reportf(b.Pos(),
				"matching corruption by error text %q is brittle; use errors.Is(err, ErrCorrupt)", s)
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, inModule bool) {
	info := pass.TypesInfo
	switch {
	case analysis.IsPkgFunc(info, call, "fmt", "Errorf"):
		if len(call.Args) < 2 {
			return
		}
		wrapsSentinel := false
		for _, arg := range call.Args[1:] {
			if isSentinelRef(info, arg) {
				wrapsSentinel = true
			}
		}
		if !wrapsSentinel {
			return
		}
		format, ok := analysis.ConstString(info, call.Args[0])
		if ok && !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(),
				"ErrCorrupt formatted without %%w: errors.Is(err, ErrCorrupt) will not see through this error; wrap with %%w")
		}
	case analysis.IsPkgFunc(info, call, "errors", "New"):
		if !inModule || sentinelPackages[pass.Pkg.Path()] {
			return
		}
		if len(call.Args) != 1 {
			return
		}
		if s, ok := analysis.ConstString(info, call.Args[0]); ok && mentionsCorrupt(s) {
			pass.Reportf(call.Pos(),
				"new corruption sentinel %q shadows hwsim.ErrCorrupt; wrap the shared sentinel with fmt.Errorf(...%%w...) instead", s)
		}
	case analysis.IsPkgFunc(info, call, "strings", "Contains"),
		analysis.IsPkgFunc(info, call, "strings", "HasPrefix"),
		analysis.IsPkgFunc(info, call, "strings", "HasSuffix"),
		analysis.IsPkgFunc(info, call, "strings", "EqualFold"),
		analysis.IsPkgFunc(info, call, "strings", "Index"):
		usesErrorText := false
		corrupt := false
		for _, arg := range call.Args {
			if errorCall(info, arg) {
				usesErrorText = true
			}
			if s, ok := analysis.ConstString(info, arg); ok && mentionsCorrupt(s) {
				corrupt = true
			}
		}
		if usesErrorText && corrupt {
			pass.Reportf(call.Pos(),
				"matching corruption by error text is brittle; use errors.Is(err, ErrCorrupt)")
		}
	}
}
