// Package lifecycle is goroutinelife analyzer testdata. The harness
// loads it under a lifecycle import path so the invariant applies.
package lifecycle

import (
	"context"
	"os"
	"sync"

	"wfqsort/internal/hwsim"
)

// daemon models the engine's goroutine topology: a WaitGroup-joined
// worker, a done-channel datapath, a watchdog, and a one-shot result
// worker.
type daemon struct {
	wg     sync.WaitGroup
	done   chan struct{}
	result chan int
}

// GoodWaitGroup: Done in the body, Wait reachable from Join.
func (d *daemon) GoodWaitGroup(work func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		work()
	}()
}

// Join is the shutdown path that waits the group out.
func (d *daemon) Join() { d.wg.Wait() }

// GoodDatapath closes the done channel on exit; Stop blocks on it.
func (d *daemon) GoodDatapath(work func()) {
	go func() {
		defer close(d.done)
		work()
	}()
}

// Stop is the drain handshake.
func (d *daemon) Stop() { <-d.done }

// GoodWatchdog exits when the datapath closes done (receive-in-body,
// close-in-package).
func (d *daemon) GoodWatchdog() {
	go func() {
		<-d.done
	}()
}

// GoodResult is the one-shot worker: its send is received by Collect.
func (d *daemon) GoodResult() {
	go func() {
		d.result <- 1
	}()
}

// Collect receives the one-shot result.
func (d *daemon) Collect() int { return <-d.result }

// loop is a named datapath goroutine joined through the done channel.
func (d *daemon) loop() {
	<-d.done
}

// GoodNamed spawns a same-package method whose body shows the join.
func (d *daemon) GoodNamed() {
	go d.loop()
}

// GoodContext is governed by its context's lifetime.
func GoodContext(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// GoodExternal spawns a cross-package method, but the same package
// reaches Close on the receiver, so shutdown joins it.
func GoodExternal(f *os.File) {
	go f.Sync()
	_ = f.Close()
}

// BadFireAndForget leaks: nothing can wait this goroutine out.
func BadFireAndForget(work func()) {
	go func() { // want `goroutine is not joinable`
		work()
	}()
}

// BadOrphanSend sends on a channel no shutdown path receives.
func BadOrphanSend() {
	orphan := make(chan int)
	go func() { // want `goroutine is not joinable`
		orphan <- 1
	}()
	_ = orphan
}

// leak is a named goroutine with no join evidence in its body.
func (d *daemon) leak(work func()) {
	for {
		work()
	}
}

// BadNamed spawns the leaking method.
func (d *daemon) BadNamed(work func()) {
	go d.leak(work) // want `goroutine is not joinable`
}

// BadExternal spawns a cross-package method whose receiver is never
// closed, shut down, or stopped here.
func BadExternal(c *hwsim.Clock) {
	go c.Tick() // want `go hwsim.Tick spawns an unjoinable goroutine: no Close/Shutdown/Stop on its receiver is reachable in this package`
}
