// Package goroutinelife enforces goroutine joinability in the serving
// runtime: every `go` statement in the concurrent packages must spawn a
// goroutine that some shutdown path can wait out. The engine's drain
// contract ("zero unaccounted packets, Served closes, Stop returns")
// is only meaningful if no goroutine outlives the drain — a leaked
// goroutine holds lane state, keeps fabrics warm, and turns every
// restart into a slow leak.
//
// A spawned goroutine is considered joinable when its body (a function
// literal, or the declaration of a same-package function/method) shows
// one of:
//
//   - a sync.WaitGroup Done whose group is Wait()ed somewhere in the
//     package;
//   - closing a channel some other code in the package receives from
//     (the `defer close(done)` datapath pattern — Stop blocks on it);
//   - receiving from a channel the package closes (the watchdog
//     pattern: `case <-done: return`);
//   - sending its result on a channel the package receives from (the
//     one-shot worker pattern);
//   - selecting on a context's Done channel (context-governed
//     lifetime; go vet's lostcancel covers the cancel leak).
//
// A `go` call into another package (whose body is not loadable) is
// accepted when the package provably reaches a Close/Shutdown/Stop
// call on the same receiver — `go hs.Serve(ln)` is joinable because
// the drain path calls hs.Close(). Everything else is flagged.
package goroutinelife

import (
	"go/ast"
	"go/types"

	"wfqsort/internal/analysis"
)

// Analyzer is the goroutinelife analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc: "every go statement in the concurrent runtime must be joinable: " +
		"tied to a WaitGroup, done channel, result channel, or context " +
		"that a shutdown path reaches",
	Run: run,
}

// LifecyclePackages lists the packages whose goroutines must be
// joinable. Tests may load testdata packages under these paths.
var LifecyclePackages = map[string]bool{
	"wfqsort/internal/engine":     true,
	"wfqsort/internal/supervisor": true,
	"wfqsort/internal/sharded":    true,
	"wfqsort/cmd/wfqd":            true,
}

// evidence is the package-wide join machinery: which WaitGroups are
// waited, which channels are closed, received from, or sent to.
type evidence struct {
	waited   map[types.Object]bool // WaitGroup vars with a Wait() call
	closed   map[types.Object]bool // channel vars passed to close()
	received map[types.Object]bool // channel vars received from / ranged
	funcs    map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	if !LifecyclePackages[pass.Pkg.Path()] {
		return nil
	}
	ev := gather(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, ev, gs)
			return true
		})
	}
	return nil
}

// chanVar resolves the variable object behind a channel expression
// (ch, s.done, (s.done)); nil for call results and literals.
func chanVar(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		return pass.ObjectOf(x.Sel)
	}
	return nil
}

// gather indexes the package's join machinery and function bodies.
func gather(pass *analysis.Pass) *evidence {
	ev := &evidence{
		waited:   map[types.Object]bool{},
		closed:   map[types.Object]bool{},
		received: map[types.Object]bool{},
		funcs:    map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					ev.funcs[fn] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
						if v := chanVar(pass, n.Args[0]); v != nil {
							ev.closed[v] = true
						}
					}
					return true
				}
				fn := analysis.CalleeFunc(pass.TypesInfo, n)
				if fn == nil || fn.Name() != "Wait" {
					return true
				}
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if analysis.IsNamed(pass.TypeOf(sel.X), "sync", "WaitGroup") {
						if v := chanVar(pass, sel.X); v != nil {
							ev.waited[v] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					if v := chanVar(pass, n.X); v != nil {
						ev.received[v] = true
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						if v := chanVar(pass, n.X); v != nil {
							ev.received[v] = true
						}
					}
				}
			}
			return true
		})
	}
	return ev
}

// checkGo validates one go statement against the join evidence.
func checkGo(pass *analysis.Pass, ev *evidence, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		fn := analysis.CalleeFunc(pass.TypesInfo, gs.Call)
		if fn != nil {
			if fd, ok := ev.funcs[fn]; ok && fd.Body != nil {
				body = fd.Body
				break
			}
			// Cross-package spawn: joinable when the package reaches a
			// Close/Shutdown/Stop on the same receiver.
			if sel, ok := ast.Unparen(gs.Call.Fun).(*ast.SelectorExpr); ok {
				if recv := chanVar(pass, sel.X); recv != nil && closedElsewhere(pass, recv) {
					return
				}
			}
			pass.Reportf(gs.Pos(),
				"go %s.%s spawns an unjoinable goroutine: no Close/Shutdown/Stop on its receiver is reachable in this package",
				pkgOf(fn), fn.Name())
			return
		}
		pass.Reportf(gs.Pos(), "go statement spawns an unresolvable goroutine; tie it to a WaitGroup or done channel")
		return
	}
	if joinable(pass, ev, body) {
		return
	}
	pass.Reportf(gs.Pos(),
		"goroutine is not joinable: no WaitGroup Done, done-channel close/receive, result send, or context governing its exit is visible from a shutdown path")
}

func pkgOf(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}

// closedElsewhere reports whether the package calls Close, Shutdown, or
// Stop on the object v (the cross-package spawn join contract).
func closedElsewhere(pass *analysis.Pass, v types.Object) bool {
	found := false
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Shutdown" && name != "Stop" {
				return true
			}
			if chanVar(pass, sel.X) == v {
				found = true
			}
			return !found
		})
	}
	return found
}

// joinable scans a goroutine body for join evidence.
func joinable(pass *analysis.Pass, ev *evidence, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				// close(ch) where ch is received elsewhere: the classic
				// datapath `defer close(done)`.
				if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					if v := chanVar(pass, n.Args[0]); v != nil && ev.received[v] {
						found = true
					}
				}
				return !found
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Done":
				recv := pass.TypeOf(sel.X)
				// wg.Done() with a waited group joins; <-ctx.Done() is
				// handled as a receive below, but a bare ctx.Done() select
				// also counts.
				if analysis.IsNamed(recv, "sync", "WaitGroup") {
					if v := chanVar(pass, sel.X); v != nil && ev.waited[v] {
						found = true
					}
				}
				if recv != nil && analysis.IsNamed(recv, "context", "Context") {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if v := chanVar(pass, n.X); v != nil && ev.closed[v] {
					found = true
				}
				// <-ctx.Done()
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" &&
						analysis.IsNamed(pass.TypeOf(sel.X), "context", "Context") {
						found = true
					}
				}
			}
		case *ast.SendStmt:
			if v := chanVar(pass, n.Chan); v != nil && ev.received[v] {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					if v := chanVar(pass, n.X); v != nil && ev.closed[v] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
