package goroutinelife_test

import (
	"path/filepath"
	"testing"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/goroutinelife"
)

func TestGoroutinelife(t *testing.T) {
	dir := filepath.Join("testdata", "lifecycle")
	// Load the testdata under a lifecycle import path so the invariant
	// applies to it.
	analysis.RunTest(t, dir, "wfqsort/internal/engine", goroutinelife.Analyzer)
}

func TestGoroutinelifeScope(t *testing.T) {
	// The same sources loaded outside the lifecycle package set produce
	// no diagnostics: one-shot tools may fire-and-forget.
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "lifecycle"), "wfqsort/internal/oneshot")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{goroutinelife.Analyzer}, pkg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, first: %s", len(diags), diags[0])
	}
}
