package network

import (
	"testing"

	"wfqsort/internal/packet"
	"wfqsort/internal/police"
	"wfqsort/internal/schedulers"
	"wfqsort/internal/traffic"
)

func wfqHop(name string, weights []float64, capacity float64) Hop {
	return Hop{
		Name:        name,
		CapacityBps: capacity,
		NewDiscipline: func() (schedulers.Discipline, error) {
			return schedulers.NewWFQ(weights, capacity)
		},
	}
}

func TestNewPathValidation(t *testing.T) {
	if _, err := NewPath(); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := NewPath(Hop{Name: "x", CapacityBps: 0, NewDiscipline: nil}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewPath(Hop{Name: "x", CapacityBps: 1e6}); err == nil {
		t.Error("missing factory accepted")
	}
}

func TestBoundValidation(t *testing.T) {
	if _, err := WFQEndToEndBound(1, 1, 0, []float64{1e6}, 1); err == nil {
		t.Error("zero reservation accepted")
	}
	if _, err := WFQEndToEndBound(1, 1, 1e5, nil, 1); err == nil {
		t.Error("no hops accepted")
	}
	if _, err := WFQEndToEndBound(1, 1, 1e5, []float64{0}, 1); err == nil {
		t.Error("zero hop capacity accepted")
	}
}

// TestEndToEndDelayBound is the paper's §I promise, executed: a shaped
// voice flow crossing three WFQ hops, each congested by local cross
// traffic, stays within the Parekh–Gallager end-to-end bound.
func TestEndToEndDelayBound(t *testing.T) {
	const (
		capacity = 2e6
		hops     = 3
	)
	// Voice flow 0: shaped to (64 kb/s, 4 kbit burst), 160-byte packets.
	bucket := police.Bucket{RateBps: 64e3, BurstBits: 4000}
	voice, err := traffic.NewCBR(0, 64e3, 160, 200, 0)
	if err != nil {
		t.Fatalf("NewCBR: %v", err)
	}
	// Cross traffic flows 1-2 saturate every hop.
	bulk1, err := traffic.NewCBR(1, 1.5e6, 1500, 400, 0)
	if err != nil {
		t.Fatalf("NewCBR: %v", err)
	}
	bulk2, err := traffic.NewPoisson(2, 120, traffic.IMIX{}, 400, 9)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	pkts, err := traffic.Merge(voice, bulk1, bulk2)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	shaped, err := police.ShapeTrace(pkts, map[int]police.Bucket{0: bucket})
	if err != nil {
		t.Fatalf("ShapeTrace: %v", err)
	}

	// Reserve 10% of each hop for voice: g = 200 kb/s ≥ r = 64 kb/s.
	weights := []float64{0.1, 0.6, 0.3}
	var hopList []Hop
	caps := make([]float64, hops)
	for h := 0; h < hops; h++ {
		hopList = append(hopList, wfqHop("hop", weights, capacity))
		caps[h] = capacity
	}
	path, err := NewPath(hopList...)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	res, err := path.Run(shaped)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	g := weights[0] * capacity
	bound, err := WFQEndToEndBound(bucket.BurstBits, 160*8, g, caps, 1500*8)
	if err != nil {
		t.Fatalf("WFQEndToEndBound: %v", err)
	}
	worst := 0.0
	for _, p := range shaped {
		if p.Flow != 0 {
			continue
		}
		if d := res.EndToEnd[p.ID]; d > worst {
			worst = d
		}
	}
	if worst > bound {
		t.Fatalf("voice end-to-end delay %v exceeds Parekh–Gallager bound %v", worst, bound)
	}
	if worst <= 0 {
		t.Fatal("no voice packets measured")
	}
}

// TestFIFOJitterCompounds: the same topology under FIFO hops blows
// through the WFQ bound — per-hop interference accumulates.
func TestFIFOJitterCompounds(t *testing.T) {
	const capacity = 2e6
	voice, err := traffic.NewCBR(0, 64e3, 160, 100, 0)
	if err != nil {
		t.Fatalf("NewCBR: %v", err)
	}
	// Bursty bulk traffic: on/off peaks far above the line rate, so a
	// FIFO queue builds up behind each burst.
	bulk, err := traffic.NewOnOff(1, 2000, 0.05, 0.05, traffic.FixedSize(1500), 500, 2)
	if err != nil {
		t.Fatalf("NewOnOff: %v", err)
	}
	pkts, err := traffic.Merge(voice, bulk)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	var hopsF []Hop
	for h := 0; h < 3; h++ {
		cap := capacity
		hopsF = append(hopsF, Hop{
			Name:        "fifo-hop",
			CapacityBps: cap,
			NewDiscipline: func() (schedulers.Discipline, error) {
				return schedulers.NewFIFO(), nil
			},
		})
	}
	path, err := NewPath(hopsF...)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	res, err := path.Run(pkts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bound, err := WFQEndToEndBound(4000, 160*8, 0.1*capacity, []float64{capacity, capacity, capacity}, 1500*8)
	if err != nil {
		t.Fatalf("WFQEndToEndBound: %v", err)
	}
	worst := 0.0
	for _, p := range pkts {
		if p.Flow != 0 {
			continue
		}
		if d := res.EndToEnd[p.ID]; d > worst {
			worst = d
		}
	}
	if worst <= bound {
		t.Fatalf("FIFO end-to-end delay %v within the WFQ bound %v — congestion too light to differentiate", worst, bound)
	}
}

// TestPerHopRecordsConsistent: conservation across hops — every packet
// appears exactly once per hop and timestamps are causal.
func TestPerHopRecordsConsistent(t *testing.T) {
	src, err := traffic.NewPoisson(0, 300, traffic.FixedSize(500), 200, 4)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	pkts, err := traffic.Merge(src)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	path, err := NewPath(
		wfqHop("a", []float64{1}, 2e6),
		wfqHop("b", []float64{1}, 1.8e6),
	)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	res, err := path.Run(pkts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	finishAt := make(map[int]float64, len(pkts))
	for _, dep := range res.PerHop[0] {
		finishAt[dep.Packet.ID] = dep.Finish
	}
	for _, dep := range res.PerHop[1] {
		if dep.Start < finishAt[dep.Packet.ID]-1e-9 {
			t.Fatalf("packet %d served at hop 2 (%v) before leaving hop 1 (%v)",
				dep.Packet.ID, dep.Start, finishAt[dep.Packet.ID])
		}
	}
	for h, deps := range res.PerHop {
		if len(deps) != len(pkts) {
			t.Fatalf("hop %d served %d of %d", h, len(deps), len(pkts))
		}
	}
	_ = packet.Packet{}
}
