// Package network chains per-link schedulers into a multi-hop path and
// measures end-to-end delay — the property the paper's introduction
// promises ("a worst case end-to-end queueing delay to be guaranteed for
// all connections", §I-B). Under WFQ at every hop with a session
// reserved rate φ·C ≥ r and (r, b)-conforming ingress traffic, the
// Parekh–Gallager network calculus bounds the end-to-end delay by
//
//	D ≤ b/g + (H−1)·Lflow/g + Σ_h Lmax/C_h
//
// for g = min hop reservation, H hops, Lflow the flow's own maximum
// packet and Lmax the link MTU. The package runs any Discipline at each
// hop, so the same topology quantifies how the round-robin family's
// per-hop jitter compounds.
package network

import (
	"fmt"
	"sort"

	"wfqsort/internal/packet"
	"wfqsort/internal/schedulers"
)

// Hop is one output link on the path.
type Hop struct {
	// Name labels the hop in results.
	Name string
	// CapacityBps is the link rate.
	CapacityBps float64
	// NewDiscipline constructs a fresh discipline instance for the hop
	// (schedulers are stateful, so each hop needs its own).
	NewDiscipline func() (schedulers.Discipline, error)
}

// Path is a chain of hops all flows traverse in order.
type Path struct {
	hops []Hop
}

// NewPath builds a path.
func NewPath(hops ...Hop) (*Path, error) {
	if len(hops) == 0 {
		return nil, fmt.Errorf("network: no hops")
	}
	for i, h := range hops {
		if h.CapacityBps <= 0 {
			return nil, fmt.Errorf("network: hop %d (%s) capacity %v must be positive", i, h.Name, h.CapacityBps)
		}
		if h.NewDiscipline == nil {
			return nil, fmt.Errorf("network: hop %d (%s) has no discipline factory", i, h.Name)
		}
	}
	p := &Path{hops: make([]Hop, len(hops))}
	copy(p.hops, hops)
	return p, nil
}

// Result holds per-hop departures and end-to-end timings.
type Result struct {
	// PerHop[h] is hop h's departure record.
	PerHop [][]schedulers.Departure
	// EndToEnd[id] is the packet's final-hop finish minus its original
	// arrival.
	EndToEnd []float64
}

// Run sends the arrival trace through every hop in sequence: each hop's
// departure times are the next hop's arrival times.
func (p *Path) Run(arrivals []packet.Packet) (*Result, error) {
	cur := make([]packet.Packet, len(arrivals))
	copy(cur, arrivals)
	maxID := -1
	for _, pk := range arrivals {
		if pk.ID > maxID {
			maxID = pk.ID
		}
	}
	origByID := make([]float64, maxID+1)
	for _, pk := range arrivals {
		origByID[pk.ID] = pk.Arrival
	}

	res := &Result{PerHop: make([][]schedulers.Departure, len(p.hops))}
	for h, hop := range p.hops {
		d, err := hop.NewDiscipline()
		if err != nil {
			return nil, fmt.Errorf("network: hop %d (%s): %w", h, hop.Name, err)
		}
		deps, err := schedulers.Run(cur, d, hop.CapacityBps)
		if err != nil {
			return nil, fmt.Errorf("network: hop %d (%s): %w", h, hop.Name, err)
		}
		res.PerHop[h] = deps
		// Next hop's arrivals are this hop's departures.
		next := make([]packet.Packet, len(deps))
		for i, dep := range deps {
			pk := dep.Packet
			pk.Arrival = dep.Finish
			next[i] = pk
		}
		sort.SliceStable(next, func(a, b int) bool { return next[a].Arrival < next[b].Arrival })
		cur = next
	}
	res.EndToEnd = make([]float64, maxID+1)
	last := res.PerHop[len(p.hops)-1]
	for _, dep := range last {
		res.EndToEnd[dep.Packet.ID] = dep.Finish - origByID[dep.Packet.ID]
	}
	return res, nil
}

// WFQEndToEndBound returns the Parekh–Gallager end-to-end delay bound
// for an (rBps, burstBits)-conforming flow with per-hop reserved rate
// gBps ≥ rBps across hops links of capacity capsBps, flow maximum packet
// flowMaxBits and link MTU mtuBits.
func WFQEndToEndBound(burstBits, flowMaxBits, gBps float64, capsBps []float64, mtuBits float64) (float64, error) {
	if gBps <= 0 {
		return 0, fmt.Errorf("network: reserved rate %v must be positive", gBps)
	}
	if len(capsBps) == 0 {
		return 0, fmt.Errorf("network: no hops")
	}
	d := burstBits/gBps + float64(len(capsBps)-1)*flowMaxBits/gBps
	for _, c := range capsBps {
		if c <= 0 {
			return 0, fmt.Errorf("network: hop capacity %v must be positive", c)
		}
		d += mtuBits / c
	}
	return d, nil
}
