// Packet-conservation identity in machine-checkable form. The
// conservation analyzer requires every uint64 Stats counter to appear
// in one of these Conservation* methods or carry a justified exemption
// directive, so a new counter cannot silently drift outside the ledger.

package engine

import "fmt"

// ConservationOffered returns the ingest-side total: every packet the
// outside world offered is either submitted or accounted to exactly one
// drop counter (Offered = Submitted + DropsRing + DropsRED).
func (s Stats) ConservationOffered() uint64 {
	return s.Submitted + s.DropsRing + s.DropsRED
}

// ConservationFaultMoves returns the conserving fault-path moves:
// Remapped (packets routed off a quarantined lane's tag slice) and
// Evacuated (sorter-resident packets relocated at quarantine time)
// shift packets between lanes without entering the loss ledger, so they
// must never appear on either side of the conservation identity.
func (s Stats) ConservationFaultMoves() uint64 {
	return s.Remapped + s.Evacuated
}

// ConservationCheck verifies the quiescent packet-conservation
// identity: with the rings empty (post-drain, or any settled snapshot)
// every submitted packet was inserted, and every inserted packet was
// extracted, removed by a cancellation, lost to a fault, resident in a
// lane sorter, or parked in a served ring awaiting the tag-order merge.
// The identity is kept per lane (see Stats.LaneLedgers) and summed
// here; the shed and ghost ledgers are subsets of FaultLost, so they
// can never exceed it. Reweighted packets stay resident (they only
// change tag, possibly lane), so Reweights appears on neither side.
func (s Stats) ConservationCheck() error {
	if s.Submitted != s.Inserted {
		return fmt.Errorf("engine: conservation: submitted %d != inserted %d (ingest leak)",
			s.Submitted, s.Inserted)
	}
	if s.Inserted != s.Extracted+s.Removed+s.FaultLost+uint64(s.SorterLen)+uint64(s.ServedOccupied) {
		return fmt.Errorf("engine: conservation: inserted %d != extracted %d + removed %d + faultLost %d + resident %d + served-pending %d",
			s.Inserted, s.Extracted, s.Removed, s.FaultLost, s.SorterLen, s.ServedOccupied)
	}
	if s.DrainShed > s.FaultLost {
		return fmt.Errorf("engine: conservation: drainShed %d exceeds faultLost %d (shed packets must be in the loss ledger)",
			s.DrainShed, s.FaultLost)
	}
	if s.GhostDrops > s.FaultLost {
		return fmt.Errorf("engine: conservation: ghostDrops %d exceeds faultLost %d (ghosts reconcile into the loss ledger)",
			s.GhostDrops, s.FaultLost)
	}
	return nil
}
