package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// throttledEngine builds a started engine whose output path is nearly
// closed (ServeAhead and OutBuffer of 1), so submitted packets stay
// resident in the lane sorters until the test attaches a consumer —
// making cancel/reweight targets deterministic.
func throttledEngine(t *testing.T, lanes int) *Engine {
	t.Helper()
	e, err := New(Config{Lanes: lanes, LaneCapacity: 1024, ServeAhead: 1, OutBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCancelRemovesPackets: cancelled packets depart through the
// Removed ledger — never delivered, never counted lost — and the
// conservation identity closes over the drain.
func TestCancelRemovesPackets(t *testing.T) {
	e := throttledEngine(t, 2)
	const n = 400
	for i := 0; i < n; i++ {
		if _, err := e.Submit(100+i, i); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "ingestion", func() bool { return e.StatsSnapshot().RingOccupied == 0 })

	// Cancel the upper half: with a throttled output path only the very
	// smallest tags can have left the sorters, so these are resident.
	cancelled := make(map[int]bool)
	for i := n / 2; i < n; i++ {
		// A refusal means the control ring is momentarily full — the
		// documented contract is retry, not loss.
		waitUntil(t, "cancel admission", func() bool {
			ok, err := e.Cancel(100+i, i)
			if err != nil {
				t.Fatalf("Cancel(%d,%d): %v", 100+i, i, err)
			}
			return ok
		})
		cancelled[i] = true
	}
	waitUntil(t, "cancels to execute", func() bool {
		st := e.StatsSnapshot()
		return st.Removed+st.CancelMisses == n/2
	})
	if st := e.StatsSnapshot(); st.Removed != n/2 || st.CancelMisses != 0 {
		t.Fatalf("Removed=%d CancelMisses=%d, want %d/0", st.Removed, st.CancelMisses, n/2)
	}

	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(served) != n/2 {
		t.Fatalf("served %d packets, want %d", len(served), n/2)
	}
	for _, s := range served {
		if cancelled[s.Payload] {
			t.Fatalf("cancelled packet (tag %d payload %d) was delivered", s.Tag, s.Payload)
		}
	}
	st := e.StatsSnapshot()
	checkConservation(t, st)
	if st.FaultLost != 0 {
		t.Fatalf("FaultLost=%d: cancellation must not be booked as loss", st.FaultLost)
	}
}

// TestReweightMovesPackets: a reweighted packet is delivered exactly
// once under its new tag — same-lane and cross-lane (interleaved
// partition: tag parity selects the lane) — with FCFS among the new
// tag's duplicates.
func TestReweightMovesPackets(t *testing.T) {
	e := throttledEngine(t, 2)
	// Tags 500..509, payload = tag-500. Lane = tag&1.
	for i := 0; i < 10; i++ {
		if _, err := e.Submit(500+i, i); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "ingestion", func() bool { return e.StatsSnapshot().RingOccupied == 0 })

	// Same-lane: 508 → 600 (both even). Cross-lane: 509 → 600 (odd →
	// even). Both join tag 600; the earlier reweight must serve first.
	if ok, err := e.Reweight(508, 8, 600); err != nil || !ok {
		t.Fatalf("Reweight(508) = %v, %v", ok, err)
	}
	waitUntil(t, "first reweight", func() bool { return e.StatsSnapshot().Reweights == 1 })
	if ok, err := e.Reweight(509, 9, 600); err != nil || !ok {
		t.Fatalf("Reweight(509) = %v, %v", ok, err)
	}
	waitUntil(t, "reweights to execute", func() bool {
		st := e.StatsSnapshot()
		return st.Reweights+st.CancelMisses == 2
	})
	if st := e.StatsSnapshot(); st.CancelMisses != 0 {
		t.Fatalf("CancelMisses=%d executing reweights of resident packets", st.CancelMisses)
	}

	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(served) != 10 {
		t.Fatalf("served %d packets, want 10", len(served))
	}
	byPayload := make(map[int]Served)
	var at600 []int
	for _, s := range served {
		byPayload[s.Payload] = s
		if s.Tag == 600 {
			at600 = append(at600, s.Payload)
		}
	}
	if byPayload[8].Tag != 600 || byPayload[9].Tag != 600 {
		t.Fatalf("reweighted packets served at tags %d/%d, want 600/600",
			byPayload[8].Tag, byPayload[9].Tag)
	}
	if len(at600) != 2 || at600[0] != 8 || at600[1] != 9 {
		t.Fatalf("tag-600 FCFS order %v, want [8 9]", at600)
	}
	st := e.StatsSnapshot()
	checkConservation(t, st)
	if st.Removed != 0 || st.Reweights != 2 {
		t.Fatalf("Removed=%d Reweights=%d, want 0/2: a reweight is not a departure", st.Removed, st.Reweights)
	}
}

// TestCancelMissAndErrors: requests aimed at departed or never-stored
// packets count as misses; invalid tags and lifecycle states error.
func TestCancelMissAndErrors(t *testing.T) {
	e, err := New(Config{Lanes: 2, LaneCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cancel(1, 1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("cancel before start: %v, want ErrNotStarted", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cancel(-1, 0); err == nil {
		t.Fatal("cancel with negative tag must error")
	}
	if _, err := e.Reweight(1, 0, e.TagRange()); err == nil {
		t.Fatal("reweight beyond the tag range must error")
	}
	if ok, err := e.Cancel(7, 7); err != nil || !ok {
		t.Fatalf("cancel of absent packet refused: %v, %v", ok, err)
	}
	waitUntil(t, "miss to count", func() bool { return e.StatsSnapshot().CancelMisses == 1 })
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := e.Cancel(1, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("cancel after stop: %v, want ErrStopped", err)
	}
	checkConservation(t, e.StatsSnapshot())
}

// TestCancelRingBackpressure: a full control ring refuses requests
// (counted, retryable) instead of blocking or growing unbounded.
func TestCancelRingBackpressure(t *testing.T) {
	// RingSize 4 at the default 0.25 share → a single control slot.
	e, err := New(Config{Lanes: 1, LaneCapacity: 64, RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// Wedge the lane goroutine so nothing drains the control ring.
	picked := make(chan struct{})
	gate := make(chan struct{})
	if err := e.InjectLane(0, func() { close(picked); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-picked
	admitted := 0
	for i := 0; i < 3; i++ {
		ok, err := e.Cancel(10+i, i)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("admitted %d cancels into a 1-slot control ring, want 1", admitted)
	}
	if st := e.StatsSnapshot(); st.CancelDrops != 2 {
		t.Fatalf("CancelDrops=%d, want 2", st.CancelDrops)
	}
	close(gate)
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	checkConservation(t, e.StatsSnapshot())
}

// TestCancelRingShareValidation covers the new knob.
func TestCancelRingShareValidation(t *testing.T) {
	cfg := Config{}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CancelRingShare != 0.25 {
		t.Fatalf("default CancelRingShare = %v, want 0.25", cfg.CancelRingShare)
	}
	for _, share := range []float64{-0.5, 1.5} {
		bad := Config{CancelRingShare: share}
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted CancelRingShare %v", share)
		}
	}
	if c := controlRingCap(Config{CancelRingShare: 0.01, RingSize: 4}); c != 1 {
		t.Fatalf("control ring floor = %d, want 1", c)
	}
}

// TestDynamicChurnConcurrent is the race-mode churn scenario: producers
// arm packets while cancellers and reweighters fire at recently armed
// ones mid-flight, a consumer drains throughout, and the conservation
// identity — now including Removed — must close exactly at the end.
func TestDynamicChurnConcurrent(t *testing.T) {
	e, err := New(Config{Lanes: 4, LaneCapacity: 512, RingSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)

	const producers = 4
	const perProducer = 500
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		prodWG.Add(1)
		go func() {
			defer prodWG.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			for i := 0; i < perProducer; i++ {
				tag := rng.Intn(e.TagRange())
				payload := p*perProducer + i
				if _, err := e.Submit(tag, payload); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				// Fire dynamic updates at this producer's own recent
				// submissions: some hit resident packets, some race the
				// departure and miss — both must stay conserved.
				switch rng.Intn(10) {
				case 0:
					if _, err := e.Cancel(tag, payload); err != nil {
						t.Errorf("producer %d cancel: %v", p, err)
						return
					}
				case 1:
					if _, err := e.Reweight(tag, payload, rng.Intn(e.TagRange())); err != nil {
						t.Errorf("producer %d reweight: %v", p, err)
						return
					}
				}
			}
		}()
	}
	prodWG.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	st := e.StatsSnapshot()
	checkConservation(t, st)
	if uint64(len(served))+st.Removed != st.Inserted {
		t.Fatalf("served %d + removed %d != inserted %d", len(served), st.Removed, st.Inserted)
	}
	// Every payload is unique: delivered at most once, and never after
	// a successful cancel of the same packet would also have served it.
	seen := make(map[int]bool, len(served))
	for _, s := range served {
		if seen[s.Payload] {
			t.Fatalf("payload %d delivered twice", s.Payload)
		}
		seen[s.Payload] = true
	}
}
