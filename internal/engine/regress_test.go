package engine

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCleanDrainDeliversStraggler pins the merge-exit fix: when every
// lane has exited, the merge must re-check the served rings before
// declaring a clean drain, so a straggler entry published between the
// empty scan and the done flags is delivered instead of shed as
// FaultLost by the final sweep. The race window is narrow, so the test
// loops the whole lifecycle and requires exact conservation every time.
func TestCleanDrainDeliversStraggler(t *testing.T) {
	const iters, n = 40, 200
	for it := 0; it < iters; it++ {
		e, err := New(Config{Lanes: 4, LaneCapacity: 256, RingSize: 64, BatchSize: 8, OutBuffer: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Start(); err != nil {
			t.Fatal(err)
		}
		var served []Served
		var wg sync.WaitGroup
		drainAll(t, e, &served, &wg)
		for i := 0; i < n; i++ {
			if _, err := e.Submit(i%e.TagRange(), i); err != nil {
				t.Fatalf("iter %d: submit %d: %v", it, i, err)
			}
		}
		if err := e.Stop(); err != nil {
			t.Fatalf("iter %d: stop: %v", it, err)
		}
		wg.Wait()
		st := e.StatsSnapshot()
		checkConservation(t, st)
		if st.FaultLost != 0 {
			t.Fatalf("iter %d: clean drain shed %d packets as FaultLost", it, st.FaultLost)
		}
		if st.Extracted != n || len(served) != n {
			t.Fatalf("iter %d: extracted %d, delivered %d, want %d", it, st.Extracted, len(served), n)
		}
	}
}

// TestSubmitErrStoppedAfterTerminalFailure pins the terminal-failure
// contract: with fault recovery off, a datapath panic kills the engine,
// and Submit must start returning ErrStopped (not hang, not admit into
// a dead datapath).
func TestSubmitErrStoppedAfterTerminalFailure(t *testing.T) {
	e, err := New(Config{Lanes: 2, LaneCapacity: 256, RingSize: 64, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	for i := 0; i < 16; i++ {
		if _, err := e.Submit(i%e.TagRange(), i); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := e.InjectLane(0, func() { panic("regress: terminal datapath failure") }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "Submit to return ErrStopped", func() bool {
		_, err := e.Submit(0, 0)
		return errors.Is(err, ErrStopped)
	})
	if err := e.Stop(); err == nil {
		t.Fatal("Stop returned nil after an unrecovered datapath panic")
	}
	wg.Wait()
	if st := e.StatsSnapshot(); st.Health != "failed" {
		t.Fatalf("health %q after terminal failure, want failed", st.Health)
	}
}

// TestMergeForcedBoundedHold drives the merge's bounded-hold path: lane
// 1 is wedged with its backlog visible in the submission rings, so the
// merge sees it pending while lane 0 keeps publishing. Each delivery
// must exhaust its own hold budget and then proceed (MergeForced
// increments per forced delivery because the spin budget resets), and
// once the wedge clears the drain must conserve every packet.
func TestMergeForcedBoundedHold(t *testing.T) {
	e, err := New(Config{Lanes: 2, LaneCapacity: 256, RingSize: 64, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)

	// Wedge lane 1's datapath, then park its traffic in the shard rings
	// (interleaved partition: odd tags → lane 1) so ringsOccupied keeps
	// the lane pending in the merge's eyes.
	if err := e.InjectLane(1, func() { time.Sleep(300 * time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
	const perLane = 20
	for i := 0; i < perLane; i++ {
		if _, err := e.Submit(2*i+1, perLane+i); err != nil {
			t.Fatalf("lane-1 submit %d: %v", i, err)
		}
	}
	for i := 0; i < perLane; i++ {
		if _, err := e.Submit(2*i, i); err != nil {
			t.Fatalf("lane-0 submit %d: %v", i, err)
		}
	}
	// Lane 0's deliveries each face the pending lane 1: at least two
	// must be forced through separate exhausted hold budgets.
	waitFor(t, "forced merge deliveries", func() bool {
		return e.StatsSnapshot().MergeForced >= 2
	})
	if err := e.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	wg.Wait()
	st := e.StatsSnapshot()
	checkConservation(t, st)
	if st.FaultLost != 0 {
		t.Fatalf("bounded hold shed %d packets", st.FaultLost)
	}
	if len(served) != 2*perLane {
		t.Fatalf("delivered %d of %d", len(served), 2*perLane)
	}
	if st.MergeForced < 2 {
		t.Fatalf("MergeForced = %d, want >= 2 (budget must re-arm per delivery)", st.MergeForced)
	}
}
