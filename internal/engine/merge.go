// Tag-order merge: a dedicated goroutine combines the per-lane served
// rings through a min-combining select tree (the software analogue of
// the paper's select-tree fan-in) and delivers to the Served channel in
// global tag order.
//
// Progress guarantee (DESIGN.md §14): delivery waits for a lane with an
// empty served ring only while that lane verifiably has work in flight
// (backlog or sorter occupancy) and is alive, and only up to a bounded
// spin budget; past the budget the merge proceeds with the best visible
// head and counts the relaxation in Stats.MergeForced. A wedged
// consumer is the merge stage's own fault domain: the drain watchdog
// aborts delivery, the remainder is shed accountably, and the lanes'
// drains finish regardless.
//
//wfqlint:ignore-file determinism the merge stage is wall-clock serving code, not simulation (DESIGN.md §11)
package engine

import (
	"fmt"
	"runtime"
	"time"
)

// mergeHoldBudget bounds how many scheduler-yielding scan passes the
// merge stage waits on a lane that has work in flight but no visible
// head before proceeding without it (counted in Stats.MergeForced).
const mergeHoldBudget = 4096

// mergeTree is a winner (min-combining) select tree over the lanes'
// served-ring heads: node 1 holds the lane index with the minimum head
// tag, leaves sit at [size, size+lanes). Single-writer — only the merge
// goroutine touches it. Ties resolve to the lower lane index so equal
// tags serve in a stable lane order.
type mergeTree struct {
	size int
	tag  []int // head tag per lane, valid while the leaf is set
	node []int // winner lane per subtree, -1 for empty
}

func newMergeTree(lanes int) *mergeTree {
	size := 1
	for size < lanes {
		size <<= 1
	}
	t := &mergeTree{size: size, tag: make([]int, size), node: make([]int, 2*size)}
	for i := range t.node {
		t.node[i] = -1
	}
	return t
}

// set publishes lane's head tag and replays its root path.
func (t *mergeTree) set(lane, tag int) {
	t.tag[lane] = tag
	t.node[t.size+lane] = lane
	t.ascend(lane)
}

// clear removes lane's head and replays its root path.
func (t *mergeTree) clear(lane int) {
	t.node[t.size+lane] = -1
	t.ascend(lane)
}

func (t *mergeTree) ascend(lane int) {
	for i := (t.size + lane) / 2; i >= 1; i /= 2 {
		l, r := t.node[2*i], t.node[2*i+1]
		switch {
		case l < 0:
			t.node[i] = r
		case r < 0:
			t.node[i] = l
		case t.tag[r] < t.tag[l]:
			t.node[i] = r
		default:
			t.node[i] = l
		}
	}
}

// min returns the lane holding the minimum head tag, or -1 when every
// served ring is empty.
func (t *mergeTree) min() int { return t.node[1] }

// mergeLoop is the merge goroutine: the consumer of every lane's served
// ring, the sole sender on the Served channel, and the engine's final
// authority on shutdown — it exits only after every lane goroutine has,
// sweeps whatever they left behind into the ledger, and then closes the
// output.
func (e *Engine) mergeLoop() {
	defer func() {
		e.laneWG.Wait()
		e.finalSweep()
		close(e.out)
		close(e.done)
	}()
	tree := newMergeTree(len(e.lanes))
	heads := make([]outEntry, len(e.lanes))
	valid := make([]bool, len(e.lanes))
	aborted := false
	holdSpins := 0
	for {
		if e.terminated() {
			return
		}
		if !aborted && e.drainAborted() {
			aborted = true
			e.failSoft(fmt.Errorf("engine: drain aborted by watchdog after %v without progress: remainder shed (accounted in FaultLost)",
				e.cfg.DrainTimeout))
		}
		// Refresh invalid heads from the served rings (Peek leaves the
		// entry in place: the ring slot is released only on delivery, so
		// ServedOccupied stays truthful for the watchdog and stats).
		for i, lw := range e.lanes {
			if !valid[i] {
				if en, ok := lw.served.Peek(); ok {
					heads[i] = en
					valid[i] = true
					tree.set(i, en.tag)
				}
			}
		}

		if aborted {
			// Shed everything visible; lanes shed their own backlog. Exit
			// once every lane has and the rings are dry.
			shed := 0
			for i, lw := range e.lanes {
				if !valid[i] {
					continue
				}
				lw.served.Advance()
				valid[i] = false
				tree.clear(i)
				lw.faultLost.Add(1)
				lw.drainShed.Add(1)
				shed++
				lw.wake()
			}
			if shed > 0 {
				e.redDepart(shed)
				e.mergeProgress.Add(uint64(shed))
				continue
			}
			if e.allLanesDone() {
				return
			}
			runtime.Gosched()
			continue
		}

		best := tree.min()
		if best < 0 {
			if e.allLanesDone() {
				// doneFlag is stored after a lane's last served push
				// (laneExit), so done-then-empty is race-free — but the
				// empty Peek above may predate both. Re-check the rings
				// AFTER observing done: only a still-dry ring set proves a
				// clean drain; otherwise loop to deliver the stragglers
				// instead of letting finalSweep shed them as FaultLost.
				if e.servedOccupied() == 0 {
					return // clean drain: every lane exited, every ring is dry
				}
				continue
			}
			select {
			case <-e.mergeWake:
			case <-e.abortDrain:
			case <-e.terminate:
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}

		// Hold for a lane that could still publish a smaller tag: alive,
		// in service, demonstrably holding work, but with nothing visible
		// yet. Bounded — a wedged lane must not wedge the merge.
		pending := false
		for j, lw := range e.lanes {
			if valid[j] || lw.doneFlag.Load() || e.quar[j].Load() {
				continue
			}
			if lw.sorterLen.Load() > 0 || lw.ringsOccupied() > 0 {
				pending = true
				break
			}
		}
		if pending && holdSpins < mergeHoldBudget {
			holdSpins++
			runtime.Gosched()
			continue
		}
		if pending {
			e.mergeForced.Add(1)
		}
		// Reset the spin budget whether the delivery was forced or not:
		// each delivery gets its own bounded hold window, so one exhausted
		// budget relaxes order for one delivery, not the whole episode.
		holdSpins = 0

		lw := e.lanes[best]
		en := heads[best]
		lw.served.Advance()
		valid[best] = false
		tree.clear(best)
		lw.wake() // served-ring space: the lane can serve again
		lat := time.Duration(time.Now().UnixNano() - en.submitNs)
		e.mergeBlocked.Store(true)
		select {
		case e.out <- Served{Tag: en.tag, Payload: en.payload, Latency: lat}:
			e.mergeBlocked.Store(false)
			lw.extracted.Add(1)
			e.recordLatency(int64(lat))
			e.redDepart(1)
			e.mergeProgress.Add(1)
		case <-e.abortDrain:
			e.mergeBlocked.Store(false)
			// The drain watchdog fired while this delivery was wedged:
			// shed it accountably; the abort branch above sheds the rest.
			lw.faultLost.Add(1)
			lw.drainShed.Add(1)
			e.redDepart(1)
			e.mergeProgress.Add(1)
		case <-e.terminate:
			e.mergeBlocked.Store(false)
			lw.faultLost.Add(1)
			e.redDepart(1)
			return
		}
	}
}

// finalSweep runs after every lane goroutine has exited (single-
// threaded by construction): any item left in a shard ring, transfer
// inbox, or served ring — racers against a terminal exit or an aborted
// drain — is counted into the owning lane's ledger so the conservation
// identity closes no matter how the engine went down.
func (e *Engine) finalSweep() {
	for _, lw := range e.lanes {
		shed := 0
		for {
			it, ok := lw.popOne()
			if !ok {
				break
			}
			if !it.accounted {
				lw.inserted.Add(1)
			}
			shed++
		}
		for {
			if _, ok := lw.served.Pop(); !ok {
				break
			}
			shed++
		}
		if shed > 0 {
			lw.faultLost.Add(uint64(shed))
			lw.drainShed.Add(uint64(shed))
			e.redDepart(shed)
		}
	}
}
