// Per-lane datapath: one goroutine per lane owning that lane's sorter,
// memory fabric, slot table, and conservation ledger. Producers reach a
// lane only through its sharded SPSC submission rings and its transfer
// inbox; everything else on this file runs on the lane goroutine
// (DESIGN.md §14 has the ownership diagram).
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfqsort/internal/core"
	"wfqsort/internal/metrics"
	"wfqsort/internal/ring"
	"wfqsort/internal/taglist"
)

// laneShard is one producer shard of a lane's submission path: a
// lock-free SPSC ring whose single-producer role is claimed per push
// with an uncontended TryLock (two producers that pick different shards
// never touch the same cache line; the lane goroutine is the one
// consumer of every shard, so the pop side needs no lock at all).
type laneShard struct {
	mu sync.Mutex
	r  *ring.SPSC[item]
}

// laneMirror is the lane's modelled-hardware gauge snapshot, published
// by the lane goroutine for StatsSnapshot readers.
type laneMirror struct {
	cycles uint64
	fabric []metrics.PortPressure
}

// laneWorker is one lane's datapath state. Fields below the atomics
// block are owned by the lane goroutine; the atomics are the lane's
// slice of the conservation ledger and its cross-goroutine gauges.
type laneWorker struct {
	e   *Engine
	idx int
	ln  *core.Sorter

	shards []*laneShard

	// xfer is the transfer inbox: evacuees and quarantine forwards from
	// other lane goroutines. Multi-producer (any lane may forward), so
	// pushes serialize on xferMu; the lane goroutine is the consumer.
	xfer   *ring.SPSC[item]
	xferMu sync.Mutex

	// control is the dynamic-update inbox: Cancel and Reweight requests
	// from producer goroutines (serialized on controlMu; the lane
	// goroutine is the consumer). Sized by Config.CancelRingShare so
	// control traffic and packet admission cannot starve each other.
	control   *ring.SPSC[item]
	controlMu sync.Mutex

	// served is the lane's output ring toward the merge stage: the lane
	// goroutine produces extracted entries, the merge goroutine consumes
	// them in global tag order. Its capacity (Config.ServeAhead) bounds
	// how far this lane runs ahead of the slowest lane.
	served *ring.SPSC[outEntry]

	notify chan struct{} // producer → lane doorbell
	space  chan struct{} // lane → blocked-producer doorbell
	probe  chan struct{} // supervisor reinstate-probe offer
	inject chan func()   // chaos seam (InjectLane)

	abort     chan struct{} // per-lane drain abort (watchdog)
	abortOnce sync.Once

	slots []slot
	free  []int

	panicStreak int
	arrived     bool
	rrShard     int
	sinceMirror int

	// Conservation ledger (atomic: summed by StatsSnapshot at any time).
	inserted   atomic.Uint64
	extracted  atomic.Uint64
	removed    atomic.Uint64
	faultLost  atomic.Uint64
	drainShed  atomic.Uint64
	ghostDrops atomic.Uint64
	evacuated  atomic.Uint64

	// Telemetry and cross-goroutine gauges.
	cancelMisses atomic.Uint64
	reweights    atomic.Uint64
	recoveries   atomic.Uint64
	batches      atomic.Uint64
	batchedOps   atomic.Uint64
	idles        atomic.Uint64
	panics       atomic.Uint64
	progress     atomic.Uint64
	maxBatch     atomic.Int64
	sorterLen    atomic.Int64
	doneFlag     atomic.Bool
	mirror       atomic.Pointer[laneMirror]
}

func newLaneWorker(e *Engine, idx int) *laneWorker {
	lw := &laneWorker{
		e:       e,
		idx:     idx,
		ln:      e.sorter.Lane(idx),
		shards:  make([]*laneShard, e.cfg.Shards),
		xfer:    ring.New[item](e.cfg.LaneCapacity + e.cfg.RingSize),
		control: ring.New[item](controlRingCap(e.cfg)),
		served:  ring.New[outEntry](e.cfg.ServeAhead),
		notify:  make(chan struct{}, 1),
		space:   make(chan struct{}, 1),
		probe:   make(chan struct{}, 1),
		inject:  make(chan func(), 16),
		abort:   make(chan struct{}),
		slots:   make([]slot, e.cfg.LaneCapacity),
		free:    make([]int, 0, e.cfg.LaneCapacity),
	}
	shardCap := (e.cfg.RingSize + e.cfg.Shards - 1) / e.cfg.Shards
	for i := range lw.shards {
		lw.shards[i] = &laneShard{r: ring.New[item](shardCap)}
	}
	for idx := e.cfg.LaneCapacity - 1; idx >= 0; idx-- {
		lw.free = append(lw.free, idx)
	}
	return lw
}

// controlRingCap sizes a lane's control ring from the configured share
// of the submission ring (never below one slot).
func controlRingCap(cfg Config) int {
	n := int(cfg.CancelRingShare * float64(cfg.RingSize))
	if n < 1 {
		n = 1
	}
	return n
}

// pushControl offers one cancel/reweight request to the lane's control
// ring from a producer goroutine (multi-producer: serialized on
// controlMu).
func (lw *laneWorker) pushControl(it item) bool {
	lw.controlMu.Lock()
	ok := lw.control.Push(it)
	lw.controlMu.Unlock()
	return ok
}

// tryPush offers one submission to the lane's shard rings from a
// producer goroutine. The shard hint comes from the submission
// timestamp, so concurrent producers spread across shards; a shard
// whose lock is contended is skipped for the next one, and only when
// every shard was contended-or-full does the producer settle the
// question with one blocking lock on its start shard (distinguishing
// transient contention, which retries elsewhere, from genuine
// fullness, which must report false so the policy can drop or block).
func (lw *laneWorker) tryPush(it item) bool {
	n := len(lw.shards)
	start := int(uint64(it.submitNs) % uint64(n))
	for d := 0; d < n; d++ {
		sh := lw.shards[(start+d)%n]
		if !sh.mu.TryLock() {
			continue
		}
		ok := sh.r.Push(it)
		sh.mu.Unlock()
		if ok {
			return true
		}
	}
	sh := lw.shards[start]
	sh.mu.Lock()
	ok := sh.r.Push(it)
	sh.mu.Unlock()
	return ok
}

// wake rings the lane's doorbell (any goroutine).
func (lw *laneWorker) wake() {
	select {
	case lw.notify <- struct{}{}:
	default:
	}
}

// popOne takes the next backlog item: transfer inbox first (evacuees
// carry already-accounted packets), then the shard rings round-robin.
// Lane goroutine only.
func (lw *laneWorker) popOne() (item, bool) {
	if it, ok := lw.xfer.Pop(); ok {
		return it, true
	}
	n := len(lw.shards)
	for d := 0; d < n; d++ {
		sh := lw.shards[(lw.rrShard+d)%n]
		if it, ok := sh.r.Pop(); ok {
			lw.rrShard = (lw.rrShard + d + 1) % n
			return it, true
		}
	}
	return item{}, false
}

// backlogEmpty reports whether the lane's inbound rings are drained
// (control requests included: a drain must execute every admitted
// cancel before the lane may finish).
func (lw *laneWorker) backlogEmpty() bool {
	if lw.xfer.Len() > 0 || lw.control.Len() > 0 {
		return false
	}
	for _, sh := range lw.shards {
		if sh.r.Len() > 0 {
			return false
		}
	}
	return true
}

// ringsOccupied totals the lane's inbound ring occupancy (safe from any
// goroutine).
func (lw *laneWorker) ringsOccupied() int {
	n := lw.xfer.Len()
	for _, sh := range lw.shards {
		n += sh.r.Len()
	}
	return n
}

// aborted reports whether this lane's drain watchdog fired.
func (lw *laneWorker) aborted() bool {
	select {
	case <-lw.abort:
		return true
	default:
		return false
	}
}

// arrive registers this lane at the drain barrier (idempotent).
func (lw *laneWorker) arrive() {
	if !lw.arrived {
		lw.arrived = true
		lw.e.drainArrived.Add(1)
	}
}

// allocSlot assigns a payload slot to a submission (lane goroutine).
func (lw *laneWorker) allocSlot(it item) (int, bool) {
	if len(lw.free) == 0 {
		return 0, false
	}
	idx := lw.free[len(lw.free)-1]
	lw.free = lw.free[:len(lw.free)-1]
	lw.slots[idx] = slot{tag: it.tag, payload: it.payload, submitNs: it.submitNs, live: true}
	return idx, true
}

// releaseSlot frees a slot on extraction, returning its record. A dead
// or out-of-range index returns a zero slot: a recovery already
// reclaimed it, or the payload reference is damaged.
func (lw *laneWorker) releaseSlot(idx int) slot {
	if idx < 0 || idx >= len(lw.slots) || !lw.slots[idx].live {
		return slot{}
	}
	sl := lw.slots[idx]
	lw.slots[idx] = slot{}
	lw.free = append(lw.free, idx)
	return sl
}

// sweepOrphanSlots frees every still-live slot, returning the count for
// the caller to book (FaultLost always; DrainShed too when shedding).
// Only meaningful when the lane sorter is known empty: at that point a
// live slot is either a flushed sorter resident or the leftover of a
// ghost extraction whose duplicate payload reference released someone
// else's slot.
func (lw *laneWorker) sweepOrphanSlots() int {
	lost := 0
	for idx := range lw.slots {
		if lw.slots[idx].live {
			lw.slots[idx] = slot{}
			lw.free = append(lw.free, idx)
			lost++
		}
	}
	return lost
}

// updateMirror publishes the lane's modelled-hardware gauges.
func (lw *laneWorker) updateMirror() {
	lw.mirror.Store(&laneMirror{
		cycles: lw.e.sorter.LaneClock(lw.idx).Now(),
		fabric: metrics.FabricPressure(lw.e.sorter.LaneFabric(lw.idx)),
	})
}

// laneLoop is lane i's datapath goroutine: ingest from the shard rings
// and transfer inbox, serve into the served ring, repair faults, honor
// drains. It exits on drain completion, per-lane or global drain abort,
// or a terminal error.
func (e *Engine) laneLoop(i int) {
	lw := e.lanes[i]
	defer e.laneWG.Done()
	defer func() {
		if r := recover(); r != nil {
			// Backstop containment: a panic escaping the guarded steps
			// (bookkeeping, not datapath work) goes terminal so producers,
			// the merge stage, and peer lanes unblock instead of
			// deadlocking. Bookkeeping only — no datapath calls here.
			e.fail(fmt.Errorf("engine: lane %d datapath panic: %v", i, r))
			lw.arrive()
			lw.doneFlag.Store(true)
			e.wakeMerge()
		}
	}()

	const mirrorEvery = 8
	lw.sinceMirror = mirrorEvery // force a mirror on the first pass
	draining := false
	drainIdle := 0
	for {
		worked, failed := false, false
		ops := 0

		// Chaos seam: injected actions run here, panic-contained, on the
		// goroutine that owns this lane's state. A failed (repaired)
		// action counts as a failed step so consecutive panics accumulate
		// against the streak budget.
		select {
		case fn := <-lw.inject:
			if err := e.guardAction(fn); err != nil {
				if term := e.handleLaneFailure(lw, "chaos", err); term != nil {
					e.fail(term)
					lw.laneExit()
					return
				}
				failed, worked = true, true
			}
		default:
		}
		if e.terminated() {
			lw.laneExit()
			return
		}
		select {
		case <-lw.probe:
			if e.quar[i].Load() && !draining {
				e.probeLane(lw)
				worked = true
			}
		default:
		}

		if e.quar[i].Load() {
			// Out of service: keep the inbound rings moving toward
			// healthy lanes so producers blocked on this lane unwedge.
			// Control requests still execute (as misses — the sorter was
			// flushed at quarantine time) so the control ring drains.
			if n, err := e.guardStep(func() (int, error) { return e.laneControl(lw) }); err != nil {
				if term := e.handleLaneFailure(lw, "control", err); term != nil {
					e.fail(term)
					lw.laneExit()
					return
				}
				failed, worked = true, true
			} else if n > 0 {
				worked = true
				ops += n
			}
			if n := e.laneForward(lw); n > 0 {
				worked = true
				ops += n
			}
		} else {
			if n, err := e.guardStep(func() (int, error) { return e.laneControl(lw) }); err != nil {
				if term := e.handleLaneFailure(lw, "control", err); term != nil {
					e.fail(term)
					lw.laneExit()
					return
				}
				failed, worked = true, true
			} else if n > 0 {
				worked = true
				ops += n
			}
			if n, err := e.guardStep(func() (int, error) { return e.laneIngest(lw) }); err != nil {
				if term := e.handleLaneFailure(lw, "ingest", err); term != nil {
					e.fail(term)
					lw.laneExit()
					return
				}
				failed, worked = true, true // a repair is progress
			} else if n > 0 {
				worked = true
				ops += n
			}
			if n, err := e.guardStep(func() (int, error) { return e.laneServe(lw) }); err != nil {
				if term := e.handleLaneFailure(lw, "extract", err); term != nil {
					e.fail(term)
					lw.laneExit()
					return
				}
				failed, worked = true, true
			} else if n > 0 {
				worked = true
				ops += n
			}
		}
		if !failed {
			lw.panicStreak = 0
		}
		if ops > 0 && e.cfg.RecoverFaults && !draining {
			for _, lane := range e.sup.OnOps(uint64(ops)) {
				e.routeProbe(lane)
			}
		}

		lw.sorterLen.Store(int64(lw.ln.Len()))
		if lw.sinceMirror++; worked && lw.sinceMirror >= mirrorEvery {
			lw.updateMirror()
			lw.sinceMirror = 0
		}
		if worked {
			lw.progress.Add(1)
			if !draining {
				select {
				case <-e.drainReq:
					draining = true
				default:
				}
			}
			drainIdle = 0
			continue
		}

		lw.idles.Add(1)
		lw.updateMirror()
		lw.sinceMirror = 0
		if draining {
			if e.drainAborted() || lw.aborted() {
				e.laneShed(lw)
				lw.laneExit()
				return
			}
			if lw.backlogEmpty() && lw.ln.Len() == 0 {
				e.laneFinish(lw)
				lw.laneExit()
				return
			}
			// Sorter non-empty with the served ring full: the merge stage
			// hasn't caught up. Yield and rescan.
			if drainIdle++; drainIdle%64 == 0 {
				time.Sleep(100 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		select {
		case <-lw.notify:
		case <-e.drainReq:
			draining = true
		case <-e.terminate:
			lw.laneExit()
			return
		}
	}
}

// laneIngest moves up to BatchSize backlog items into the lane sorter,
// bounded by sorter links and payload slots so a full lane
// backpressures instead of failing.
func (e *Engine) laneIngest(lw *laneWorker) (int, error) {
	n := 0
	for n < e.cfg.BatchSize && lw.ln.Len() < e.cfg.LaneCapacity && len(lw.free) > 0 {
		it, ok := lw.popOne()
		if !ok {
			break
		}
		if err := e.ingestOne(lw, it); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		lw.batches.Add(1)
		lw.batchedOps.Add(uint64(n))
		if m := int64(n); m > lw.maxBatch.Load() {
			lw.maxBatch.Store(m)
		}
		select {
		case lw.space <- struct{}{}:
		default:
		}
	}
	return n, nil
}

// ingestOne inserts one item into this lane's sorter. A lane always
// inserts into its own sorter — lane sorters accept the full tag range,
// so quarantine routing happens upstream (remapLane in Submit,
// laneForward on quarantined lanes) by choosing which lane's rings the
// item lands in; once an item is in a lane's backlog it never moves
// again. That guarantees the drain final sweep terminates: after the
// barrier no lane produces into another.
func (e *Engine) ingestOne(lw *laneWorker, it item) error {
	idx, ok := lw.allocSlot(it)
	if !ok {
		// Slot table exhausted (only possible after fault losses outran
		// reconciliation, or under heavy cross-lane forwarding): shed
		// accountably.
		if !it.accounted {
			lw.inserted.Add(1)
		}
		lw.faultLost.Add(1)
		e.redDepart(1)
		return nil
	}
	err := lw.ln.Insert(it.tag, idx)
	if !it.accounted {
		lw.inserted.Add(1)
	}
	if err != nil {
		// The slot stays live: the repair's reconciliation counts it in
		// FaultLost if the sorter lost the entry.
		return err
	}
	if e.sorter.LaneFor(it.tag) != lw.idx {
		e.remapped.Add(1)
	}
	return nil
}

// laneControl executes up to BatchSize pending cancel/reweight requests
// against this lane's sorter (lane goroutine only). Each request is a
// charged circuit operation; a request whose target already departed
// executes as a counted miss.
func (e *Engine) laneControl(lw *laneWorker) (int, error) {
	n := 0
	for n < e.cfg.BatchSize {
		it, ok := lw.control.Pop()
		if !ok {
			break
		}
		n++
		var err error
		if it.op == opCancel {
			err = e.laneCancel(lw, it)
		} else {
			err = e.laneReweight(lw, it)
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// findSlot locates the live slot holding the oldest resident packet
// matching (tag, payload), or -1. The slot table is the authoritative
// record (quarantine evacuation trusts it over the sorter for the same
// reason), and slot indices are unique, so the (tag, slot) pair handed
// to the sorter identifies exactly one link even among duplicate
// user-level (tag, payload) submissions.
func (lw *laneWorker) findSlot(tag, payload int) int {
	best := -1
	for idx := range lw.slots {
		sl := &lw.slots[idx]
		if sl.live && sl.tag == tag && sl.payload == payload &&
			(best == -1 || sl.submitNs < lw.slots[best].submitNs) {
			best = idx
		}
	}
	return best
}

// laneCancel removes one resident packet: unlink from the lane sorter,
// release the payload slot, charge the Removed ledger. A corrupt-state
// error surfaces to the supervision layer like any datapath fault — a
// cancellation must never turn silent loss into "it was cancelled
// anyway".
func (e *Engine) laneCancel(lw *laneWorker, it item) error {
	idx := lw.findSlot(it.tag, it.payload)
	if idx < 0 {
		lw.cancelMisses.Add(1)
		return nil
	}
	found, err := lw.ln.Remove(it.tag, idx)
	if err != nil {
		return err
	}
	if !found {
		// Live slot without a sorter link: the entry is in flight toward
		// the served ring or awaiting fault reconciliation. The departure
		// wins the race.
		lw.cancelMisses.Add(1)
		return nil
	}
	lw.releaseSlot(idx)
	lw.removed.Add(1)
	e.redDepart(1)
	return nil
}

// laneReweight moves one resident packet to a new tag. When the new tag
// stays on this lane (or the engine is draining, when cross-lane
// forwarding can no longer be guaranteed a consumer) the lane sorter
// reranks in place; otherwise the packet is unlinked here and forwarded
// to its new home lane as an already-accounted item, exactly like a
// quarantine evacuee — the packet stays inside the conservation
// identity the whole way.
func (e *Engine) laneReweight(lw *laneWorker, it item) error {
	idx := lw.findSlot(it.tag, it.payload)
	if idx < 0 {
		lw.cancelMisses.Add(1)
		return nil
	}
	dest, ok := e.remapLane(it.newTag)
	if !ok || e.draining.Load() {
		dest = lw.idx
	}
	if dest == lw.idx {
		found, err := lw.ln.Rerank(it.tag, idx, it.newTag)
		if err != nil {
			return err
		}
		if !found {
			lw.cancelMisses.Add(1)
			return nil
		}
		lw.slots[idx].tag = it.newTag
		lw.reweights.Add(1)
		return nil
	}
	found, err := lw.ln.Remove(it.tag, idx)
	if err != nil {
		return err
	}
	if !found {
		lw.cancelMisses.Add(1)
		return nil
	}
	sl := lw.releaseSlot(idx)
	fwd := item{tag: it.newTag, payload: sl.payload, submitNs: sl.submitNs, accounted: true}
	if !e.forwardTo(e.lanes[dest], fwd) && !e.forwardHealthy(lw, fwd) {
		// No lane can take it: shed accountably (already inserted).
		lw.faultLost.Add(1)
		e.redDepart(1)
		return nil
	}
	lw.reweights.Add(1)
	return nil
}

// laneServe extracts up to BatchSize entries from the lane sorter into
// the served ring (a full ring is the merge stage's backpressure).
// Extraction is counted when the merge stage delivers, so the in-flight
// served entries stay visible to the conservation identity as
// ServedOccupied.
func (e *Engine) laneServe(lw *laneWorker) (int, error) {
	n := 0
	pushed := 0
	for n < e.cfg.BatchSize && lw.ln.Len() > 0 && lw.served.Len() < lw.served.Cap() {
		if e.drainAborted() || lw.aborted() {
			break
		}
		entry, err := lw.ln.ExtractMin()
		if err != nil {
			if errors.Is(err, taglist.ErrEmpty) {
				break
			}
			return n, err
		}
		n++
		sl := lw.releaseSlot(entry.Payload)
		if !sl.live {
			// Ghost entry: its payload no longer maps to a live slot — a
			// corrupted payload field made two entries reference one slot,
			// or a recovery already reclaimed it. The packet it belonged
			// to is (or will be) accounted as FaultLost when its orphaned
			// slot reconciles, so emitting the ghost would double-count an
			// extraction. Drop it; it still counts as an op.
			lw.ghostDrops.Add(1)
			continue
		}
		// The Len() < Cap() guard above guarantees this push succeeds:
		// the lane goroutine is the ring's only producer.
		lw.served.Push(outEntry{tag: sl.tag, payload: sl.payload, submitNs: sl.submitNs})
		pushed++
	}
	if pushed > 0 {
		e.wakeMerge()
	}
	return n, nil
}

// laneForward moves a quarantined lane's inbound backlog onto healthy
// lanes (the lane's sorter is already flushed; only its rings keep
// receiving until producers observe the quarantine flag).
func (e *Engine) laneForward(lw *laneWorker) int {
	n := 0
	for n < e.cfg.BatchSize {
		it, ok := lw.popOne()
		if !ok {
			break
		}
		if !e.forwardHealthy(lw, it) {
			// No healthy lane can take it: shed accountably.
			if !it.accounted {
				lw.inserted.Add(1)
			}
			lw.faultLost.Add(1)
			e.redDepart(1)
		}
		n++
	}
	return n
}

// forwardTo pushes one item into dest's transfer inbox (multi-producer
// side: serialized on xferMu).
func (e *Engine) forwardTo(dest *laneWorker, it item) bool {
	if dest.doneFlag.Load() {
		return false // dest already exited; nobody would drain it
	}
	dest.xferMu.Lock()
	ok := dest.xfer.Push(it)
	dest.xferMu.Unlock()
	if ok {
		dest.wake()
	}
	return ok
}

// forwardHealthy routes one item to its healthy home lane, falling back
// to any healthy lane (degraded interleaving beats a lost packet).
func (e *Engine) forwardHealthy(lw *laneWorker, it item) bool {
	if home, ok := e.remapLane(it.tag); ok && home != lw.idx {
		if e.forwardTo(e.lanes[home], it) {
			return true
		}
	}
	for d := 1; d < len(e.lanes); d++ {
		h := (lw.idx + d) % len(e.lanes)
		if e.quar[h].Load() {
			continue
		}
		if e.forwardTo(e.lanes[h], it) {
			return true
		}
	}
	return false
}

// handleLaneFailure applies the supervision policy to a lane datapath
// error. A nil return means the lane repaired its state and the loop
// may continue; non-nil is terminal for the whole engine.
func (e *Engine) handleLaneFailure(lw *laneWorker, op string, err error) error {
	isPanic := errors.Is(err, errDatapathPanic)
	if isPanic {
		lw.panics.Add(1)
		lw.panicStreak++
	}
	if !e.cfg.RecoverFaults || (!errors.Is(err, core.ErrCorrupt) && !isPanic) {
		return fmt.Errorf("engine: lane %d %s: %w", lw.idx, op, err)
	}
	if isPanic && lw.panicStreak > e.cfg.Supervision.MaxRetries {
		return fmt.Errorf("engine: lane %d %s: %d consecutive datapath panics exhaust the retry budget: %w",
			lw.idx, op, lw.panicStreak, err)
	}
	if rerr := e.laneRepair(lw); rerr != nil {
		return fmt.Errorf("engine: lane %d %s: %w (repair failed: %v)", lw.idx, op, err, rerr)
	}
	lw.recoveries.Add(1)
	return nil
}

// laneRepair is this lane's fault-domain recovery pass: audit the lane,
// drive the supervisor's bounded retry-with-backoff rebuild if dirty,
// quarantine (evacuating survivors) if the supervisor gives up, then
// reconcile the slot table so every unrecoverable packet is counted.
// Unlike the serial engine's repair, it touches only lane state this
// goroutine owns — peer lanes repair themselves.
func (e *Engine) laneRepair(lw *laneWorker) error {
	if !e.quar[lw.idx].Load() {
		if rep := lw.ln.Audit(); rep.Err() != nil {
			out := e.sup.Repair(lw.idx, func(int) error {
				if err := lw.ln.Rebuild(); err != nil {
					return err
				}
				if rep := lw.ln.Audit(); rep.Err() != nil {
					return rep.Err()
				}
				return nil
			})
			if out.Quarantined {
				e.quarantineLane(lw)
			}
		}
	}
	if e.healthyLanes() == 0 {
		return errors.New("all lanes quarantined, nothing can serve")
	}
	return e.reconcileLane(lw)
}

// quarantineLane takes this lane out of service: surviving entries are
// evacuated through healthy lanes' transfer inboxes (their slot records
// carry the authoritative tag, so a corrupt sorter tag cannot misroute
// them), the lane is flushed, and the quarantine flag makes Submit and
// peer forwarding route its tag slice elsewhere until a reinstate probe
// succeeds. Unreadable entries are left for the slot reconciliation to
// count as FaultLost.
func (e *Engine) quarantineLane(lw *laneWorker) {
	e.quar[lw.idx].Store(true)
	snap, err := lw.ln.Snapshot()
	lw.ln.Flush()
	if err != nil {
		snap = nil
	}
	moved := 0
	for _, en := range snap {
		sl := lw.releaseSlot(en.Payload)
		if !sl.live {
			continue // ghost reference; the real packet reconciles as lost
		}
		it := item{tag: sl.tag, payload: sl.payload, submitNs: sl.submitNs, accounted: true}
		if e.forwardHealthy(lw, it) {
			moved++
		} else {
			lw.faultLost.Add(1)
			e.redDepart(1)
		}
	}
	if moved > 0 {
		lw.evacuated.Add(uint64(moved))
	}
}

// probeLane answers a supervisor reinstate offer on this (flushed,
// quarantined) lane: rebuild and audit; a clean result returns it to
// service, a dirty one re-quarantines it with a doubled probe delay.
func (e *Engine) probeLane(lw *laneWorker) {
	err := lw.ln.Rebuild()
	if err == nil {
		if rep := lw.ln.Audit(); rep.Err() != nil {
			err = rep.Err()
		}
	}
	if err != nil {
		e.sup.Requarantine(lw.idx)
		return
	}
	e.quar[lw.idx].Store(false)
	e.sup.Reinstate(lw.idx)
}

// routeProbe offers a reinstate probe to the target lane's goroutine
// (the supervisor schedule may fire on any lane's op count, but only
// the owning goroutine may touch the quarantined lane's fabric).
func (e *Engine) routeProbe(lane int) {
	lw := e.lanes[lane]
	select {
	case lw.probe <- struct{}{}:
	default:
	}
	lw.wake()
}

// reconcileLane rebuilds this lane's slot free list from the sorter's
// surviving entries: slots no longer referenced by any live entry are
// freed and counted in FaultLost, closing the conservation invariant
// after a recovery.
func (e *Engine) reconcileLane(lw *laneWorker) error {
	snap, err := lw.ln.Snapshot()
	if err != nil {
		return fmt.Errorf("engine: lane %d reconcile: %w", lw.idx, err)
	}
	liveNow := make(map[int]bool, len(snap))
	for _, en := range snap {
		liveNow[en.Payload] = true
	}
	lost := 0
	for idx := range lw.slots {
		if lw.slots[idx].live && !liveNow[idx] {
			lw.slots[idx] = slot{}
			lw.free = append(lw.free, idx)
			lost++
		}
	}
	if lost > 0 {
		lw.faultLost.Add(uint64(lost))
		e.redDepart(lost)
	}
	return nil
}

// laneShed closes out this lane's aborted drain: ring and inbox items
// are counted inserted-then-lost (so Submitted == Inserted survives),
// the sorter is flushed, and the orphan sweep counts the residents —
// healthy peers keep draining untouched.
func (e *Engine) laneShed(lw *laneWorker) {
	shed := 0
	for {
		it, ok := lw.popOne()
		if !ok {
			break
		}
		if !it.accounted {
			lw.inserted.Add(1)
		}
		shed++
	}
	lw.ln.Flush()
	lost := shed + lw.sweepOrphanSlots()
	if lost > 0 {
		lw.faultLost.Add(uint64(lost))
		lw.drainShed.Add(uint64(lost))
		e.redDepart(lost)
	}
	e.failSoft(fmt.Errorf("engine: lane %d drain aborted by watchdog after %v without progress: backlog shed (accounted in FaultLost)",
		lw.idx, e.cfg.DrainTimeout))
}

// laneFinish completes this lane's graceful drain. The lane arrives at
// the drain barrier with an empty backlog and sorter, spins until every
// lane has arrived (after which no lane can forward into this one), and
// then runs one final sweep for items that raced in just before the
// barrier. Progress guarantee: arrivals are monotone, quarantined lanes
// forward only while their backlog is non-empty, and forwarding to an
// exited lane is refused — so the sweep's work is finite and the loop
// exits.
func (e *Engine) laneFinish(lw *laneWorker) {
	lw.arrive()
	want := int32(e.cfg.Lanes)
	spin := 0
	for e.drainArrived.Load() < want {
		if e.terminated() {
			return
		}
		if e.drainAborted() || lw.aborted() {
			e.laneShed(lw)
			return
		}
		if spin++; spin%64 == 0 {
			time.Sleep(50 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	spin = 0
	for {
		if e.terminated() {
			return
		}
		if e.drainAborted() || lw.aborted() {
			e.laneShed(lw)
			return
		}
		worked := 0
		if e.quar[lw.idx].Load() {
			n, err := e.guardStep(func() (int, error) { return e.laneControl(lw) })
			if err != nil {
				if term := e.handleLaneFailure(lw, "drain-control", err); term != nil {
					e.fail(term)
					return
				}
				worked++
			}
			worked += n
			worked += e.laneForward(lw)
		} else {
			n, err := e.guardStep(func() (int, error) { return e.laneControl(lw) })
			if err != nil {
				if term := e.handleLaneFailure(lw, "drain-control", err); term != nil {
					e.fail(term)
					return
				}
				worked++
			}
			worked += n
			n, err = e.guardStep(func() (int, error) { return e.laneIngest(lw) })
			if err != nil {
				if term := e.handleLaneFailure(lw, "drain-ingest", err); term != nil {
					e.fail(term)
					return
				}
				worked++
			}
			worked += n
			n, err = e.guardStep(func() (int, error) { return e.laneServe(lw) })
			if err != nil {
				if term := e.handleLaneFailure(lw, "drain-extract", err); term != nil {
					e.fail(term)
					return
				}
				worked++
			}
			worked += n
		}
		// Keep the sorter gauge live: items ingested from post-barrier
		// forwards must stay visible to the watchdog's backlog check and
		// the merge stage's pending-hold check, or a lane wedged here can
		// neither be drain-aborted nor held for.
		lw.sorterLen.Store(int64(lw.ln.Len()))
		if worked > 0 {
			lw.progress.Add(1)
			spin = 0
			continue
		}
		if lw.backlogEmpty() && lw.ln.Len() == 0 {
			break
		}
		// Sorter non-empty, served ring full: wait for the merge stage.
		if spin++; spin%64 == 0 {
			time.Sleep(50 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	// The sorter is empty: any still-live slot is an orphan left behind
	// by a ghost extraction; count it so conservation closes.
	if lost := lw.sweepOrphanSlots(); lost > 0 {
		lw.faultLost.Add(uint64(lost))
		e.redDepart(lost)
	}
}

// laneExit publishes the lane's terminal state and signals the merge
// stage. Every lane exit path funnels through here so the drain
// barrier, the merge exit condition, and the stats mirror all settle.
func (lw *laneWorker) laneExit() {
	lw.arrive()
	lw.sorterLen.Store(int64(lw.ln.Len()))
	lw.updateMirror()
	lw.doneFlag.Store(true)
	lw.e.wakeMerge()
}
