package engine

import (
	"sync"
	"testing"

	"wfqsort/internal/fault"
	"wfqsort/internal/membus"
)

// FuzzEngineFaultContainment interprets the fuzz input as an
// interleaved stream of submissions and chaos actions (2 bytes per op)
// against a live supervised engine: corrupt bursts land on lanes 0 and
// 1 while lanes 2 and 3 stay healthy, so the supervision layer may
// rebuild, quarantine, and remap at will but can never run out of
// healthy lanes. Every input must end in a clean drain with the packet
// conservation invariant intact — the engine-level analogue of
// FuzzFaultRecovery in internal/core. Run continuously with
// `go test -fuzz=FuzzEngineFaultContainment ./internal/engine`.
func FuzzEngineFaultContainment(f *testing.F) {
	// Seeds: pure traffic, traffic with one burst, burst storms across
	// both faultable lanes, bursts into an idle engine.
	f.Add([]byte{0, 1, 0, 2, 1, 3, 0, 4, 1, 5})
	f.Add([]byte{0, 1, 2, 0, 0, 2, 1, 3, 0, 4})
	seed := make([]byte, 0, 64)
	for i := 0; i < 16; i++ {
		seed = append(seed, byte(i%4), byte(i*29))
	}
	f.Add(seed)
	f.Add([]byte{2, 0, 2, 1, 2, 2, 2, 3, 6, 0, 6, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		const lanes = 4
		fabrics := make([]*membus.Fabric, lanes)
		injs := make([]*fault.Injector, 2) // only lanes 0 and 1 are faultable
		for i := range fabrics {
			fabrics[i] = membus.New(nil)
		}
		for i := range injs {
			injs[i] = fault.NewInjector(fault.Campaign{Seed: int64(i) + 17}, fabrics[i].Clock())
			injs[i].Attach(fabrics[i])
		}
		sup := noSleepSupervision()
		sup.QuarantineAfter = 2
		sup.ProbeOps = 64
		e, err := New(Config{
			Lanes: lanes, LaneCapacity: 64, LaneFabrics: fabrics,
			RingSize: 32, BatchSize: 8, RecoverFaults: true,
			Supervision: sup,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := e.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		var served []Served
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range e.Served() {
				served = append(served, s)
			}
		}()

		mems := []string{"tag-storage", "translation-table"}
		admitted := 0
		for i := 0; i+2 <= len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 3 {
			case 2: // chaos: corrupt burst on a faultable lane, injected
				// into that lane's own datapath goroutine
				lane := int(arg) % len(injs)
				inj := injs[lane]
				mem := mems[int(arg/2)%len(mems)]
				n := 1 + int(arg)%3
				if err := e.InjectLane(lane, func() { _, _ = inj.Burst(mem, n) }); err != nil {
					t.Fatalf("op %d: InjectLane: %v", i, err)
				}
			default: // submit
				ok, err := e.Submit(int(arg)%e.TagRange(), i)
				if err != nil {
					t.Fatalf("op %d: Submit: %v", i, err)
				}
				if ok {
					admitted++
				}
			}
		}
		if err := e.Stop(); err != nil {
			t.Fatalf("Stop after chaos stream: %v", err)
		}
		wg.Wait()

		st := e.StatsSnapshot()
		if st.Inserted != st.Extracted+st.FaultLost {
			t.Fatalf("conservation violated: inserted %d != extracted %d + lost %d (stats %+v)",
				st.Inserted, st.Extracted, st.FaultLost, st.Supervision)
		}
		if st.Submitted != st.Inserted {
			t.Fatalf("ingest leak: submitted %d != inserted %d", st.Submitted, st.Inserted)
		}
		if st.SorterLen != 0 || st.RingOccupied != 0 {
			t.Fatalf("drain incomplete: sorter %d rings %d", st.SorterLen, st.RingOccupied)
		}
		if uint64(admitted) != st.Submitted {
			t.Fatalf("admitted %d != submitted %d", admitted, st.Submitted)
		}
		if uint64(len(served)) != st.Extracted {
			t.Fatalf("served %d != extracted %d", len(served), st.Extracted)
		}
	})
}
