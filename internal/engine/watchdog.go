// Watchdogs: progress supervision from outside the datapath
// goroutines. Each lane gets its own deadline tracking — one wedged
// lane's drain is aborted (and shed accountably) without touching its
// healthy peers — and the merge stage gets its own, since a consumer
// that stopped receiving wedges delivery, not any lane.
package engine

import "time"

// laneTrack is the watchdog's per-lane progress ledger.
type laneTrack struct {
	last    uint64
	stuck   time.Duration
	stalled bool
}

// watchdog monitors per-lane and merge-stage progress. During a drain,
// a lane that makes no progress for DrainTimeout while it could publish
// (backlog pending, served ring not full) has its drain aborted; a lane
// blocked only because the merge stage hasn't consumed its served ring
// is exempt — the wedge, if any, is the merge stage's, and aborting the
// lane would shed packets a healthy consumer was about to receive.
// Outside a drain, a progress-free lane with work pending is flagged
// stalled in the supervision state machine (detection only) until
// progress resumes.
func (e *Engine) watchdog() {
	tick := e.watchTick()
	if tick <= 0 {
		return
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	tracks := make([]laneTrack, len(e.lanes))
	var merge laneTrack
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
		}
		draining := e.draining.Load()
		for i, lw := range e.lanes {
			tr := &tracks[i]
			p := lw.progress.Load()
			backlog := lw.ringsOccupied() > 0 || lw.sorterLen.Load() > 0
			if p != tr.last || !backlog || lw.doneFlag.Load() {
				tr.last = p
				tr.stuck = 0
				if tr.stalled {
					tr.stalled = false
					e.sup.SetLaneStalled(i, false)
				}
				continue
			}
			tr.stuck += tick
			if draining {
				if e.cfg.DrainTimeout > 0 && tr.stuck >= e.cfg.DrainTimeout &&
					lw.served.Len() < lw.served.Cap() {
					e.watchdogTrips.Add(1)
					lw.abortOnce.Do(func() { close(lw.abort) })
					lw.wake()
				}
				continue
			}
			if e.cfg.StallTimeout > 0 && tr.stuck >= e.cfg.StallTimeout && !tr.stalled {
				e.watchdogTrips.Add(1)
				tr.stalled = true
				e.sup.SetLaneStalled(i, true)
			}
		}

		// Merge stage: wedged when entries sit in served rings with no
		// delivery progress. The drain abort additionally requires the
		// merge to be parked in a delivery send (mergeBlocked), so a
		// merge merely holding for a lagging lane resolves through that
		// lane's own watchdog instead.
		mp := e.mergeProgress.Load()
		pendingOut := e.servedOccupied() > 0
		if mp != merge.last || !pendingOut {
			merge.last = mp
			merge.stuck = 0
			if merge.stalled {
				merge.stalled = false
				e.sup.SetStalled(false)
			}
			continue
		}
		merge.stuck += tick
		if draining {
			if e.cfg.DrainTimeout > 0 && merge.stuck >= e.cfg.DrainTimeout && e.mergeBlocked.Load() {
				e.watchdogTrips.Add(1)
				e.abortOnce.Do(func() { close(e.abortDrain) })
				e.wakeMerge()
			}
			continue
		}
		if e.cfg.StallTimeout > 0 && merge.stuck >= e.cfg.StallTimeout && !merge.stalled {
			e.watchdogTrips.Add(1)
			merge.stalled = true
			e.sup.SetStalled(true)
		}
	}
}

// watchTick derives the watchdog polling period from the enabled
// deadlines (an eighth of the tightest one, clamped to [1ms, 250ms]);
// zero means both deadlines are disabled and no watchdog is needed.
func (e *Engine) watchTick() time.Duration {
	min := time.Duration(0)
	for _, d := range []time.Duration{e.cfg.DrainTimeout, e.cfg.StallTimeout} {
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	if min == 0 {
		return 0
	}
	tick := min / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	return tick
}
