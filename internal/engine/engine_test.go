package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wfqsort/internal/aqm"
	"wfqsort/internal/fault"
	"wfqsort/internal/membus"
	"wfqsort/internal/supervisor"
)

// drainAll consumes the Served channel until it closes, returning the
// delivered records.
func drainAll(t *testing.T, e *Engine, out *[]Served, wg *sync.WaitGroup) {
	t.Helper()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := range e.Served() {
			*out = append(*out, s)
		}
	}()
}

// checkConservation asserts the engine's packet-conservation invariant
// after a completed drain, through the same Stats.ConservationCheck the
// conservation analyzer anchors the counter set to.
func checkConservation(t *testing.T, st Stats) {
	t.Helper()
	if err := st.ConservationCheck(); err != nil {
		t.Fatal(err)
	}
	if st.SorterLen != 0 || st.RingOccupied != 0 {
		t.Fatalf("drain incomplete: sorter %d, rings %d", st.SorterLen, st.RingOccupied)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"lanes not power of two", Config{Lanes: 3}, false},
		{"lanes too many", Config{Lanes: 128}, false},
		{"lane capacity too small", Config{LaneCapacity: 1}, false},
		{"negative ring", Config{RingSize: -1}, false},
		{"negative batch", Config{BatchSize: -4}, false},
		{"unknown policy", Config{Policy: Policy(99)}, false},
		{"negative out buffer", Config{OutBuffer: -2}, false},
		{"too many shards", Config{Shards: 100}, false},
		{"negative serve-ahead", Config{ServeAhead: -1}, false},
		{"negative clock", Config{ClockHz: -1}, false},
		{"red zero value", Config{Policy: PolicyRED}, true},
		{"red bad thresholds", Config{Policy: PolicyRED, RED: aqm.REDConfig{MinThreshold: 9, MaxThreshold: 3, MaxP: 0.1}}, false},
		{"red equal thresholds", Config{Policy: PolicyRED, RED: aqm.REDConfig{MinThreshold: 5, MaxThreshold: 5, MaxP: 0.1}}, false},
		{"bad supervision retries", Config{Supervision: supervisor.Config{MaxRetries: -1}}, false},
		{"bad supervision backoff", Config{Supervision: supervisor.Config{BackoffBase: time.Second, BackoffMax: time.Millisecond}}, false},
		{"watchdogs disabled", Config{DrainTimeout: -1, StallTimeout: -1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
	// Zero-value defaults are documented and observable.
	cfg := Config{}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Lanes != 4 || cfg.LaneCapacity != 1024 || cfg.RingSize != 256 ||
		cfg.BatchSize != 64 || cfg.Policy != PolicyBlock || cfg.OutBuffer != 1024 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.DrainTimeout != 5*time.Second || cfg.StallTimeout != 2*time.Second {
		t.Fatalf("unexpected watchdog defaults: drain %v stall %v", cfg.DrainTimeout, cfg.StallTimeout)
	}
	if cfg.Supervision.MaxRetries != 3 || cfg.Supervision.QuarantineAfter != 3 {
		t.Fatalf("unexpected supervision defaults: %+v", cfg.Supervision)
	}
}

func TestLifecycleBeforeStartAndAfterStop(t *testing.T) {
	e, err := New(Config{Lanes: 2, LaneCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(1, 1); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("submit before start: got %v, want ErrNotStarted", err)
	}
	if err := e.Stop(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("stop before start: got %v, want ErrNotStarted", err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err == nil {
		t.Fatal("second start must fail")
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if _, err := e.Submit(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := e.Submit(1, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: got %v, want ErrStopped", err)
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	if len(served) != 1 || served[0].Tag != 5 || served[0].Payload != 50 {
		t.Fatalf("served %+v", served)
	}
	checkConservation(t, e.StatsSnapshot())
}

// TestConcurrentProducersBlockPolicy is the race-mode smoke: many
// producers under PolicyBlock, nothing dropped, every payload delivered
// exactly once, extraction order respects per-extraction monotonicity
// within what a concurrent submitter can guarantee (the sorter invariant
// is checked by conservation plus per-tag delivery).
func TestConcurrentProducersBlockPolicy(t *testing.T) {
	const producers = 8
	const perProducer = 400
	e, err := New(Config{Lanes: 4, LaneCapacity: 512, RingSize: 32, BatchSize: 16, OutBuffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var cwg sync.WaitGroup
	drainAll(t, e, &served, &cwg)

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 7))
			for i := 0; i < perProducer; i++ {
				tag := rng.Intn(e.TagRange())
				payload := p*perProducer + i
				if ok, err := e.Submit(tag, payload); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				} else if !ok {
					t.Errorf("producer %d: dropped under PolicyBlock", p)
					return
				}
			}
		}(p)
	}
	pwg.Wait()
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	cwg.Wait()

	st := e.StatsSnapshot()
	checkConservation(t, st)
	if st.DropsRing != 0 || st.DropsRED != 0 {
		t.Fatalf("PolicyBlock dropped: ring %d, red %d", st.DropsRing, st.DropsRED)
	}
	if got, want := len(served), producers*perProducer; got != want {
		t.Fatalf("served %d of %d", got, want)
	}
	seen := make(map[int]bool, len(served))
	for _, s := range served {
		if seen[s.Payload] {
			t.Fatalf("payload %d delivered twice", s.Payload)
		}
		seen[s.Payload] = true
	}
	if st.Batches == 0 || st.BatchedOps < st.Batches {
		t.Fatalf("batching accounting off: %d batches, %d ops", st.Batches, st.BatchedOps)
	}
	if st.LatencyCount == 0 || st.LatencyP99Ns < 0 {
		t.Fatalf("latency window empty: %+v", st)
	}
}

// TestOverloadDropTail drives 2× the ring capacity through tiny rings
// with a deliberately stalled consumer, so tail drops must engage, and
// then verifies every admitted packet is still delivered after drain.
func TestOverloadDropTail(t *testing.T) {
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 2048, RingSize: 4, BatchSize: 4,
		Policy: PolicyDropTail, OutBuffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// No consumer yet: the datapath stalls on the 1-deep Served channel,
	// the rings fill, and tail drop engages deterministically.
	const offered = 512
	admitted := 0
	for i := 0; i < offered; i++ {
		ok, err := e.Submit(i%e.TagRange(), i)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			admitted++
		}
	}
	st := e.StatsSnapshot()
	if st.DropsRing == 0 {
		t.Fatal("expected ring tail drops under overload")
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st = e.StatsSnapshot()
	checkConservation(t, st)
	if uint64(admitted) != st.Submitted {
		t.Fatalf("admitted %d != submitted %d", admitted, st.Submitted)
	}
	if uint64(offered) != st.Submitted+st.DropsRing {
		t.Fatalf("offered %d != submitted %d + drops %d", offered, st.Submitted, st.DropsRing)
	}
	if len(served) != admitted {
		t.Fatalf("served %d != admitted %d", len(served), admitted)
	}
}

// TestOverloadRED forces early detection with thresholds far below the
// offered load and verifies probabilistic drops are accounted and the
// admitted traffic is conserved.
func TestOverloadRED(t *testing.T) {
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 2048, RingSize: 64, BatchSize: 8,
		Policy: PolicyRED,
		RED:    aqm.REDConfig{MinThreshold: 4, MaxThreshold: 16, MaxP: 0.9, Seed: 11},
		// 1-deep output plus no consumer until after the burst: occupancy
		// builds, so the EWMA must cross the tiny thresholds.
		OutBuffer: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	const offered = 400
	admitted := 0
	for i := 0; i < offered; i++ {
		ok, err := e.Submit(i%e.TagRange(), i)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			admitted++
		}
	}
	st := e.StatsSnapshot()
	if st.DropsRED == 0 {
		t.Fatal("expected RED drops under overload")
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st = e.StatsSnapshot()
	checkConservation(t, st)
	if uint64(offered) != st.Submitted+st.DropsRED {
		t.Fatalf("offered %d != submitted %d + red drops %d", offered, st.Submitted, st.DropsRED)
	}
	if len(served) != admitted {
		t.Fatalf("served %d != admitted %d", len(served), admitted)
	}
}

// TestFaultContainment attaches a PR-1 fault campaign to one lane fabric
// (the TestFaultInjectedLane recipe: flip the translation-table valid
// bit of a live entry on an odd access so a lookup read sees it) and
// verifies the engine recovers in place — service continues, Stop drains
// cleanly, and the conservation invariant holds with any unrecoverable
// packets accounted in FaultLost.
func TestFaultContainment(t *testing.T) {
	const lanes = 4
	fabrics := make([]*membus.Fabric, lanes)
	for i := range fabrics {
		fabrics[i] = membus.New(nil)
	}
	inj := fault.NewInjector(fault.Campaign{
		Seed: 3,
		Faults: []fault.Fault{
			{Mem: "translation-table", Kind: fault.BitFlip, Addr: 2, Mask: 1 << 8, At: fault.Trigger{Access: 41}},
		},
	}, fabrics[2].Clock())
	inj.Attach(fabrics[2])
	e, err := New(Config{
		Lanes: lanes, LaneCapacity: 256, LaneFabrics: fabrics,
		RingSize: 64, BatchSize: 32, RecoverFaults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)

	// Tag 2 maps to lane 2 interleaved; submitting it early keeps a live
	// translation entry at the flipped address while the access counter
	// runs up to the trigger.
	if _, err := e.Submit(2, 4000); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := e.Submit(rng.Intn(e.TagRange()), i); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("engine did not contain the fault: %v", err)
	}
	wg.Wait()

	if len(inj.Events()) == 0 {
		t.Fatal("campaign never fired")
	}
	st := e.StatsSnapshot()
	checkConservation(t, st)
	if got := uint64(len(served)); got != st.Extracted {
		t.Fatalf("served %d != extracted %d", got, st.Extracted)
	}
	t.Logf("recoveries=%d faultLost=%d extracted=%d", st.Recoveries, st.FaultLost, st.Extracted)
}

// TestStatsSnapshotGauges checks the observability mirror: lane gauges,
// fabric pressure, and the modeled-hardware view are populated.
func TestStatsSnapshotGauges(t *testing.T) {
	e, err := New(Config{Lanes: 4, LaneCapacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	for i := 0; i < 256; i++ {
		if _, err := e.Submit(i%e.TagRange(), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := e.StatsSnapshot()
	if st.Lanes != 4 || len(st.RingLens) != 4 || len(st.LaneLens) != 4 {
		t.Fatalf("lane gauges missing: %+v", st)
	}
	if len(st.FabricLanes) != 4 || len(st.FabricLanes[0].Regions) == 0 {
		t.Fatalf("fabric pressure missing: %+v", st.FabricLanes)
	}
	if st.WindowCycles <= 0 || st.MaxLaneCycles == 0 || st.SumLaneCycles < st.MaxLaneCycles {
		t.Fatalf("modeled cycle gauges missing: %+v", st)
	}
	if st.ModeledMpps <= 0 {
		t.Fatalf("modeled throughput missing: %+v", st)
	}
	if st.Policy != "block" {
		t.Fatalf("policy label %q", st.Policy)
	}
	// The deprecated accessor must stay equivalent.
	if e.StatsSnapshot().Extracted != st.Extracted {
		t.Fatal("Stats() diverged from StatsSnapshot()")
	}
}

// waitFor polls a condition with a generous deadline (the engine's
// recovery machinery is eventually consistent from an observer's view).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// noSleepSupervision is the test policy: no real backoff sleeps, small
// ops horizons so probes come due within a short workload.
func noSleepSupervision() supervisor.Config {
	return supervisor.Config{
		MaxRetries:      2,
		BackoffBase:     -1,
		QuarantineAfter: 1,
		CleanOps:        1 << 20,
		ProbeOps:        128,
	}
}

// TestQuarantineRemapsAndReinstates is the tentpole scenario: a lane
// takes a persistent-looking fault (QuarantineAfter 1 models "the
// supervisor has lost patience"), is quarantined with its survivors
// evacuated, its tag slice serves degraded from healthy lanes, and a
// later reinstate probe returns it to service — with full packet
// conservation throughout.
func TestQuarantineRemapsAndReinstates(t *testing.T) {
	const lanes = 4
	fabrics := make([]*membus.Fabric, lanes)
	for i := range fabrics {
		fabrics[i] = membus.New(nil)
	}
	inj := fault.NewInjector(fault.Campaign{Seed: 9}, fabrics[1].Clock())
	inj.Attach(fabrics[1])
	sup := noSleepSupervision()
	// The 64 seeded packets generate at most ~128 ops after quarantine,
	// so the probe only comes due once the degraded traffic flows: the
	// degraded window is observable before the reinstate.
	sup.ProbeOps = 500
	e, err := New(Config{
		Lanes: lanes, LaneCapacity: 256, LaneFabrics: fabrics,
		RingSize: 64, BatchSize: 16, RecoverFaults: true,
		Supervision: sup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)

	// Seed traffic on every lane, then corrupt lane 1's translation
	// table on lane 1's own datapath goroutine and trip its repair pass
	// with an injected panic (the flip alone might sit unnoticed until a
	// lookup).
	for i := 0; i < 64; i++ {
		if _, err := e.Submit(i%e.TagRange(), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.InjectLane(1, func() {
		if _, err := inj.FlipNow("translation-table", 1, 1<<8); err != nil {
			t.Errorf("FlipNow: %v", err)
		}
		panic("chaos: corrupt lane 1")
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lane 1 quarantine", func() bool {
		return e.StatsSnapshot().Supervision.Quarantines >= 1
	})
	if st := e.StatsSnapshot(); st.Ready {
		t.Fatalf("degraded engine reports ready: %+v", st.Health)
	}

	// Degraded serving: lane 1's tag slice keeps flowing, remapped onto
	// healthy lanes. 1, 5, 9, ... are lane 1 tags (interleaved).
	for i := 0; i < 1000; i++ {
		if _, err := e.Submit((4*i+1)%e.TagRange(), 100000+i); err != nil {
			t.Fatalf("degraded submit %d: %v", i, err)
		}
	}
	waitFor(t, "lane 1 reinstate", func() bool {
		return e.StatsSnapshot().Supervision.Reinstates >= 1
	})
	waitFor(t, "healthy state", func() bool {
		return e.StatsSnapshot().Health == "healthy"
	})
	if err := e.Stop(); err != nil {
		t.Fatalf("stop after quarantine cycle: %v", err)
	}
	wg.Wait()

	st := e.StatsSnapshot()
	checkConservation(t, st)
	if st.Remapped == 0 {
		t.Fatal("no packets were remapped while lane 1 was quarantined")
	}
	if st.DatapathPanics == 0 || st.Recoveries == 0 {
		t.Fatalf("panic containment not exercised: %+v", st)
	}
	if st.Supervision.Quarantines < 1 || st.Supervision.Reinstates < 1 {
		t.Fatalf("supervision counters: %+v", st.Supervision)
	}
	for _, s := range served {
		if s.Tag < 0 || s.Tag >= e.TagRange() {
			t.Fatalf("served tag %d outside range (remap leaked an effective tag?)", s.Tag)
		}
	}
	t.Logf("served=%d remapped=%d evacuated=%d lost=%d supervision=%+v",
		len(served), st.Remapped, st.Evacuated, st.FaultLost, st.Supervision)
}

// TestInjectedPanicContained: with RecoverFaults, a panicking chaos
// action is absorbed as a fault episode and service continues.
func TestInjectedPanicContained(t *testing.T) {
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 64, RecoverFaults: true,
		Supervision: noSleepSupervision(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Inject(func() { panic("chaos") }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "panic containment", func() bool {
		return e.StatsSnapshot().DatapathPanics >= 1
	})
	for i := 0; i < 100; i++ {
		if _, err := e.Submit(i%e.TagRange(), i); err != nil {
			t.Fatalf("submit after contained panic: %v", err)
		}
	}
	if err := e.Stop(); err != nil {
		t.Fatalf("stop after contained panic: %v", err)
	}
	wg.Wait()
	st := e.StatsSnapshot()
	checkConservation(t, st)
	if len(served) != 100 {
		t.Fatalf("served %d of 100 after contained panic", len(served))
	}
}

// TestPanicStreakIsTerminal: consecutive datapath panics beyond the
// retry budget stop the engine with a diagnostic instead of looping
// through futile repairs forever.
func TestPanicStreakIsTerminal(t *testing.T) {
	sup := noSleepSupervision()
	sup.MaxRetries = 1
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 64, RecoverFaults: true, Supervision: sup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	for i := 0; i < 4; i++ {
		if err := e.Inject(func() { panic("chaos storm") }); err != nil {
			break // engine already went terminal
		}
	}
	if err := e.Stop(); err == nil {
		t.Fatal("panic storm did not produce a terminal error")
	}
	wg.Wait()
	if st := e.StatsSnapshot(); st.Health != "failed" {
		t.Fatalf("health %q after terminal panic storm, want failed", st.Health)
	}
}

// TestPanicWithoutRecoveryIsTerminal: RecoverFaults off means the first
// datapath panic stops the engine (contained as an error, not a crash).
func TestPanicWithoutRecoveryIsTerminal(t *testing.T) {
	e, err := New(Config{Lanes: 2, LaneCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Inject(func() { panic("unsupervised") }); err != nil {
		t.Fatal(err)
	}
	if err := e.Stop(); err == nil {
		t.Fatal("unsupervised panic did not stop the engine")
	}
	wg.Wait()
}

// TestDrainWatchdogAbortsWedgedConsumer: a consumer that stops receiving
// mid-drain would hang Stop forever; the drain watchdog sheds the
// remainder accountably and Stop returns with a diagnostic.
func TestDrainWatchdogAbortsWedgedConsumer(t *testing.T) {
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 256, RingSize: 64, BatchSize: 8,
		OutBuffer: 1, DrainTimeout: 50 * time.Millisecond, StallTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := e.Submit(i%e.TagRange(), i); err != nil {
			t.Fatal(err)
		}
	}
	// No consumer at all: the drain wedges on the 1-deep Served channel.
	err = e.Stop()
	if err == nil {
		t.Fatal("wedged drain completed without the watchdog")
	}
	st := e.StatsSnapshot()
	if st.WatchdogTrips == 0 || st.DrainShed == 0 {
		t.Fatalf("watchdog accounting: trips=%d shed=%d", st.WatchdogTrips, st.DrainShed)
	}
	if st.Inserted != st.Extracted+st.FaultLost {
		t.Fatalf("aborted drain broke conservation: inserted %d != extracted %d + lost %d",
			st.Inserted, st.Extracted, st.FaultLost)
	}
	if st.Submitted != st.Inserted {
		t.Fatalf("aborted drain leaked ingest: submitted %d != inserted %d", st.Submitted, st.Inserted)
	}
	if st.SorterLen != 0 || st.RingOccupied != 0 {
		t.Fatalf("aborted drain left occupancy: sorter %d rings %d", st.SorterLen, st.RingOccupied)
	}
	t.Logf("drain aborted: %v (shed %d)", err, st.DrainShed)
}

// TestPerLaneDrainWatchdogSparesHealthyLanes: the drain watchdog is per
// lane, so a single wedged datapath must not cost the other lanes
// anything. Lane 0 is put to sleep by an injected chaos action that
// outlasts DrainTimeout; lane 1 drains normally and parks at the drain
// barrier (backlog-free barrier waiters are exempt from abort). Only
// lane 0's backlog is shed, lane 1's ledger closes lossless, and the
// global conservation identity still holds on the aborted drain.
func TestPerLaneDrainWatchdogSparesHealthyLanes(t *testing.T) {
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 256, RingSize: 64, BatchSize: 8,
		DrainTimeout: 50 * time.Millisecond, StallTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)

	// Wedge lane 0's datapath goroutine past the drain deadline before
	// offering it any traffic, so its whole backlog sits in the
	// submission rings when the watchdog fires. Keep the backlog below
	// the lane's ring capacity: PolicyBlock producers must never park on
	// the sleeping lane, or Stop would wait on them forever.
	if err := e.InjectLane(0, func() { time.Sleep(400 * time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
	const perLane = 40 // interleaved partition: even tags → lane 0, odd → lane 1
	for i := 0; i < perLane; i++ {
		if _, err := e.Submit(2*i, i); err != nil {
			t.Fatalf("lane-0 submit %d: %v", i, err)
		}
		if _, err := e.Submit(2*i+1, perLane+i); err != nil {
			t.Fatalf("lane-1 submit %d: %v", i, err)
		}
	}
	err = e.Stop()
	wg.Wait()
	if err == nil {
		t.Fatal("Stop completed cleanly with lane 0 wedged past DrainTimeout")
	}
	st := e.StatsSnapshot()
	if st.WatchdogTrips == 0 {
		t.Fatal("drain watchdog never tripped")
	}
	l0, l1 := st.LaneLedgers[0], st.LaneLedgers[1]
	if l0.DrainShed == 0 || l0.DrainShed != l0.FaultLost {
		t.Fatalf("wedged lane 0 ledger: shed=%d lost=%d, want all loss from shedding", l0.DrainShed, l0.FaultLost)
	}
	if l1.FaultLost != 0 || l1.DrainShed != 0 {
		t.Fatalf("healthy lane 1 lost packets: %+v", l1)
	}
	if l1.Extracted != perLane {
		t.Fatalf("healthy lane 1 served %d of %d", l1.Extracted, perLane)
	}
	for _, sv := range served {
		if sv.Tag%2 != 0 {
			continue
		}
		// Anything served from lane 0 must predate the abort; it can
		// never overlap the shed set (conservation below pins the sum).
		if l0.Extracted == 0 {
			t.Fatalf("served even tag %d but lane 0 ledger shows no extractions", sv.Tag)
		}
	}
	checkConservation(t, st)
	t.Logf("aborted drain: %v (lane0 shed %d, lane1 extracted %d)", err, l0.DrainShed, l1.Extracted)
}

// TestStallWatchdogFlagsNotReady: a blocked consumer with work pending
// flips the engine to stalled (not ready); progress resuming flips it
// back to healthy. Nothing is shed either way.
func TestStallWatchdogFlagsNotReady(t *testing.T) {
	e, err := New(Config{
		Lanes: 2, LaneCapacity: 512, RingSize: 256, BatchSize: 4,
		OutBuffer: 1, StallTimeout: 30 * time.Millisecond, DrainTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	// All on lane 0, far more than one drain pass: the datapath wedges
	// on the unread Served channel with ring occupancy pending.
	for i := 0; i < 64; i++ {
		if _, err := e.Submit(0, i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "stalled state", func() bool {
		return e.StatsSnapshot().Health == "stalled"
	})
	if e.Ready() {
		t.Fatal("stalled engine reports ready")
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	waitFor(t, "healthy after progress", func() bool {
		return e.StatsSnapshot().Health == "healthy"
	})
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	st := e.StatsSnapshot()
	checkConservation(t, st)
	if len(served) != 64 {
		t.Fatalf("stall shed packets: served %d of 64", len(served))
	}
}

// TestHealthSurface walks the observable state machine edges that do not
// need a fault: stopped → healthy → draining/stopped.
func TestHealthSurface(t *testing.T) {
	e, err := New(Config{Lanes: 2, LaneCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.StatsSnapshot(); st.Health != "stopped" || st.Ready {
		t.Fatalf("pre-start health %+v", st.Health)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if st := e.StatsSnapshot(); st.Health != "healthy" || !st.Ready || !e.Ready() {
		t.Fatalf("running health %q ready=%v", st.Health, st.Ready)
	}
	var served []Served
	var wg sync.WaitGroup
	drainAll(t, e, &served, &wg)
	if err := e.Stop(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if st := e.StatsSnapshot(); st.Health != "stopped" || st.Ready {
		t.Fatalf("post-stop health %q ready=%v", st.Health, st.Ready)
	}
}
