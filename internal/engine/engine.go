// Package engine is the line-rate serving runtime on top of the sharded
// sort/retrieve circuit: the layer that turns the cycle-accurate model
// into a long-running concurrent service with admission backpressure and
// live observability (the wfqd daemon and sortbench -engine both drive
// it).
//
// The shape follows the software packet-scheduling literature. Eiffel
// (Saeed et al., NSDI'19) shows that software schedulers reach line rate
// only when per-core queues avoid cross-core synchronization on the hot
// path; the engine's datapath is parallel in exactly that shape. Each
// lane — already an independent membus fabric and clock domain — owns
// one datapath goroutine. Producers submit through per-lane sharded
// lock-free SPSC rings (internal/ring; a producer claims a shard with an
// uncontended TryLock, the ring push itself is two atomic index ops),
// each lane goroutine drains its shards in batches through its own
// core.Sorter, and extraction fans back in through per-lane served rings
// merged by a min-combining select tree in a dedicated merge goroutine.
// The PIFO line of work (Sivaraman et al.) frames each lane's serving
// loop: admit with a computed rank, extract the minimum, repeat —
// honoring the paper's fixed operation window on every lane.
//
// Concurrency contract: producers call Submit from any goroutine; each
// lane's sorter, slot table, and fabric are owned by that lane's
// goroutine (the modelled hardware is a synchronous pipeline per lane,
// so all lane-i operations serialize through goroutine i); the Served
// channel's sender side is owned by the merge goroutine; consumers MUST
// keep receiving until Served closes, or the bounded channel
// backpressures the merge stage and, transitively, every lane (by
// design: an unread output queue is a full output queue). DESIGN.md §14
// has the goroutine-ownership diagram and the merge progress guarantee.
//
// Fault domains: with RecoverFaults set, every lane is a supervised
// fault domain (internal/supervisor) repaired on its own goroutine. A
// corrupt-state error or datapath panic on lane i triggers lane-i Audit
// and bounded retry-with-backoff Rebuild from the authoritative tag
// store; a lane that cannot be rebuilt — or that keeps faulting — is
// quarantined, its surviving entries are evacuated onto healthy lanes
// through their transfer inboxes, and its tag slice is routed there
// until a reinstate probe succeeds (degraded mode: slightly perturbed
// order, SP-PIFO-style, instead of no service). Per-lane deadline
// watchdogs convert one wedged lane's drain into accountable shedding
// without touching its healthy peers, and flag a stalled lane as
// not-ready. The accounting invariant
// Inserted == Extracted + Removed + FaultLost + in-sorter is kept per
// lane and summed: no packet is ever lost unaccounted — a cancelled
// packet departs through the Removed ledger, never silently. DESIGN.md
// §12 documents the state machine and policies; §14 the parallel split.
//
// Dynamic updates: Cancel and Reweight are first-class datapath
// operations (DESIGN.md §16). Requests ride per-lane control rings
// (Config.CancelRingShare) and execute on the owning lane's goroutine
// as charged circuit operations against that lane's sorter.
//
//wfqlint:ignore-file determinism the serving engine is intentionally wall-clock code: it measures real enqueue-to-extract latency and real throughput, not simulated time (DESIGN.md §11)
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfqsort/internal/aqm"
	"wfqsort/internal/membus"
	"wfqsort/internal/metrics"
	"wfqsort/internal/sharded"
	"wfqsort/internal/supervisor"
	"wfqsort/internal/taglist"
)

// Sentinel errors returned by Engine operations.
var (
	// ErrNotStarted is returned by Submit/Stop before Start.
	ErrNotStarted = errors.New("engine: not started")
	// ErrStopped is returned by Submit once shutdown has begun (or the
	// datapath died on an unrecoverable error).
	ErrStopped = errors.New("engine: stopped")

	// errDatapathPanic marks a panic recovered inside one lane datapath
	// step, so the supervision layer can treat it as a fault episode.
	errDatapathPanic = errors.New("engine: datapath panic")
)

// Policy selects the ingestion backpressure behaviour when a submission
// ring is full (the engine-level analogue of scheduler.FullPolicy).
type Policy int

const (
	// PolicyBlock makes Submit wait for ring space: backpressure
	// propagates to the producer, nothing is dropped. The default.
	PolicyBlock Policy = iota + 1
	// PolicyDropTail drops the submission when its lane ring is full,
	// counting it in Stats.DropsRing (classic tail drop).
	PolicyDropTail
	// PolicyRED applies random early detection (internal/aqm) on the
	// engine occupancy before ring admission: drops begin
	// probabilistically before the rings fill, counted in Stats.DropsRED.
	// A submission RED admits still blocks for ring space (an admitted
	// packet is never silently lost).
	PolicyRED
)

func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropTail:
		return "drop-tail"
	case PolicyRED:
		return "red"
	default:
		return "unknown"
	}
}

// Config describes an engine. The zero value of every field selects a
// documented default, so Config{} is a valid 4-lane engine.
type Config struct {
	// Lanes is the sharded sorter's lane count (power of two, 1..64).
	// Default 4. Each lane gets its own datapath goroutine.
	Lanes int
	// LaneCapacity is the number of tag-store links per lane.
	// Default 1024.
	LaneCapacity int
	// Partition is the tag-space split (default interleaved).
	Partition sharded.Partition
	// MemTech is each lane's tag-store memory technology (default SDR).
	MemTech taglist.MemTech
	// LaneFabrics, when non-nil, supplies one pre-built memory fabric
	// per lane (len == Lanes), e.g. to attach a fault campaign. Attach
	// observers before Start: lane i's goroutine owns fabric i
	// afterwards (use InjectLane to mutate it safely).
	LaneFabrics []*membus.Fabric
	// RingSize is the per-lane submission ring capacity, split across
	// Shards lock-free SPSC shard rings (each shard holds
	// RingSize/Shards rounded up to a power of two, so the effective
	// capacity may round up). Default 256.
	RingSize int
	// Shards is the number of producer shard rings per lane: more
	// shards, fewer producer collisions on the TryLock claim. Default 4.
	Shards int
	// BatchSize caps how many submissions one lane ingest pass moves
	// from the shard rings into the lane sorter, and how many entries
	// one lane serve pass extracts. Default 64.
	BatchSize int
	// ServeAhead is the per-lane served-ring depth between a lane's
	// extractor and the merge stage: how far a lane may run ahead of the
	// global tag-order merge. Default 64.
	ServeAhead int
	// CancelRingShare sizes each lane's control ring — the inbox for
	// Cancel and Reweight requests — as a fraction of RingSize (at least
	// one entry). Control traffic rides its own ring so a burst of
	// cancellations can never crowd out packet admission, and vice
	// versa. Default 0.25; must be in (0, 1].
	CancelRingShare float64
	// Policy is the ring-full backpressure policy (default PolicyBlock).
	Policy Policy
	// RED configures early detection when Policy is PolicyRED; the zero
	// value selects thresholds at 1/4 and 3/4 of the total in-flight
	// capacity (rings + sorter) with maxP 0.05. Invalid thresholds
	// (min ≥ max, out-of-range probabilities) are rejected by Validate.
	RED aqm.REDConfig
	// OutBuffer is the Served channel depth. Default 1024.
	OutBuffer int
	// RecoverFaults enables the fault containment path: corrupt-state
	// errors and lane datapath panics drive the per-lane supervision
	// state machine (rebuild with bounded retries, quarantine,
	// reinstate) instead of stopping the engine.
	RecoverFaults bool
	// Supervision tunes the fault-domain state machine (retry budget,
	// backoff, quarantine and reinstate policy). Zero value = documented
	// supervisor defaults. Only consulted when RecoverFaults is set.
	Supervision supervisor.Config
	// DrainTimeout bounds a graceful drain per component: a lane that
	// makes no progress for this long while it could serve (its served
	// ring has space) has its drain aborted and its backlog shed
	// accountably (counted in DrainShed and FaultLost) — without
	// touching healthy lanes. A merge stage wedged delivering to a
	// consumer that stopped receiving is aborted the same way. Default
	// 5s; negative disables the deadline.
	DrainTimeout time.Duration
	// StallTimeout flags a stalled lane: no progress for this long with
	// work pending marks that lane (and so the engine) stalled — not
	// ready — until progress resumes. Detection only; nothing is shed.
	// Default 2s; negative disables.
	StallTimeout time.Duration
	// ClockHz is the modelled circuit clock used to report modelled
	// packet rates next to wall-clock ones. Defaults to the paper's
	// 143.2 MHz.
	ClockHz float64
	// Label is a free-form tag for the workload or rank discipline
	// driving this engine (e.g. "scfq", "edf"). Purely informational:
	// echoed in Stats.Label so observability surfaces can attribute
	// counters to the discipline that produced them.
	Label string
}

// Validate checks the configuration and normalizes documented zero-value
// defaults in place. New calls it; callers only need it to pre-validate.
// Misconfigurations — non-power-of-two lanes, zero-capacity rings,
// inverted RED thresholds — are rejected here, not at runtime.
func (c *Config) Validate() error {
	if c.Lanes == 0 {
		c.Lanes = 4
	}
	if c.Lanes < 1 || c.Lanes > 64 || c.Lanes&(c.Lanes-1) != 0 {
		return fmt.Errorf("engine: lanes %d must be a power of two in 1..64", c.Lanes)
	}
	if c.LaneCapacity == 0 {
		c.LaneCapacity = 1024
	}
	if c.LaneCapacity < 2 {
		return fmt.Errorf("engine: lane capacity %d must be at least 2", c.LaneCapacity)
	}
	if c.RingSize == 0 {
		c.RingSize = 256
	}
	if c.RingSize < 1 {
		return fmt.Errorf("engine: ring size %d must be positive", c.RingSize)
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 1 || c.Shards > 64 {
		return fmt.Errorf("engine: shards %d must be in 1..64", c.Shards)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("engine: batch size %d must be positive", c.BatchSize)
	}
	if c.ServeAhead == 0 {
		c.ServeAhead = 64
	}
	if c.ServeAhead < 1 {
		return fmt.Errorf("engine: serve-ahead %d must be positive", c.ServeAhead)
	}
	if c.CancelRingShare == 0 {
		c.CancelRingShare = 0.25
	}
	if c.CancelRingShare < 0 || c.CancelRingShare > 1 {
		return fmt.Errorf("engine: cancel ring share %v must be in (0, 1]", c.CancelRingShare)
	}
	if c.Policy == 0 {
		c.Policy = PolicyBlock
	}
	if c.Policy != PolicyBlock && c.Policy != PolicyDropTail && c.Policy != PolicyRED {
		return fmt.Errorf("engine: unknown backpressure policy %d", int(c.Policy))
	}
	if c.OutBuffer == 0 {
		c.OutBuffer = 1024
	}
	if c.OutBuffer < 1 {
		return fmt.Errorf("engine: out buffer %d must be positive", c.OutBuffer)
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.ClockHz == 0 {
		c.ClockHz = 143.2e6
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("engine: clock %v must be positive", c.ClockHz)
	}
	if err := c.Supervision.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if c.Policy == PolicyRED {
		if c.RED.MinThreshold == 0 && c.RED.MaxThreshold == 0 {
			inflight := float64(c.Lanes * (c.LaneCapacity + c.RingSize))
			c.RED = aqm.REDConfig{
				MinThreshold: inflight / 4,
				MaxThreshold: inflight * 3 / 4,
				MaxP:         0.05,
			}
		}
		if err := c.RED.Validate(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	return nil
}

// Served is one extracted entry delivered to the consumer.
type Served struct {
	// Tag is the finishing tag that was served: always the tag the
	// caller submitted (quarantine routing moves packets between lanes
	// but never rewrites their tags).
	Tag int
	// Payload is the value passed to Submit.
	Payload int
	// Latency is the wall-clock enqueue-to-extract time.
	Latency time.Duration
}

// LaneLedger is one lane's slice of the conservation ledger, as summed
// into the top-level Stats counters.
type LaneLedger struct {
	Lane       int
	Inserted   uint64
	Extracted  uint64
	Removed    uint64
	FaultLost  uint64
	DrainShed  uint64
	GhostDrops uint64
	Evacuated  uint64
}

// Stats is the engine's counter snapshot, following the repository's
// StatsSnapshot() convention (DESIGN.md §11). Counters are cumulative
// since Start, summed over the per-lane ledgers; gauges reflect each
// lane's most recent mirror update (at most a few batches stale).
type Stats struct {
	Running bool
	Lanes   int
	Shards  int
	Policy  string
	// Label echoes Config.Label: the discipline or workload attribution
	// for these counters.
	Label string

	// Health is the engine state machine position: healthy, degraded,
	// stalled, draining, failed, or stopped (DESIGN.md §12). Ready is
	// the readiness view: true only while healthy.
	Health string
	Ready  bool

	// Ingest accounting. Offered = Submitted + DropsRing + DropsRED.
	Submitted uint64
	DropsRing uint64
	DropsRED  uint64

	// Datapath accounting, summed over lanes. The conservation
	// invariant is Inserted == Extracted + Removed + FaultLost +
	// SorterLen (plus ServedOccupied while entries are in flight between
	// a lane and the merge stage). Removed counts packets that left the
	// engine through Cancel — a charged departure, never a loss.
	// Reweights move a packet to a new tag without leaving the engine,
	// so they appear on neither side of the identity.
	Inserted  uint64
	Extracted uint64
	Removed   uint64
	FaultLost uint64

	// Dynamic-update telemetry. CancelMisses counts Cancel/Reweight
	// requests whose target was no longer resident (already served,
	// cancelled, or evacuated); CancelDrops counts requests refused at a
	// full control ring; Reweights counts completed tag moves.
	//wfqlint:ignore conservation cancel-miss telemetry counts requests aimed at departed packets, not packets
	CancelMisses uint64
	//wfqlint:ignore conservation control-ring drop telemetry counts refused requests, not packets
	CancelDrops uint64
	//wfqlint:ignore conservation reweight telemetry counts tag moves of packets that stay resident, not packet departures
	Reweights uint64

	// Batching effectiveness of the lane ingest loops. Pure telemetry:
	// these count datapath iterations, not packets, so they stay outside
	// the conservation identity by design.
	//wfqlint:ignore conservation batching telemetry counts ingest passes, not packets
	Batches uint64
	//wfqlint:ignore conservation batching telemetry counts sorter ops, not packets
	BatchedOps uint64
	MaxBatch   int
	//wfqlint:ignore conservation recovery telemetry counts fault events, not packets
	Recoveries uint64
	//wfqlint:ignore conservation idle telemetry counts empty lane polls, not packets
	DatapathIdles uint64

	// Fault-domain accounting (DESIGN.md §12). Remapped counts packets
	// ingested away from their partition-home lane (routed around a
	// quarantine); Evacuated counts sorter-resident packets relocated at
	// quarantine time; DrainShed counts packets shed by an aborted drain
	// (also in FaultLost); GhostDrops counts extractions suppressed
	// because a corrupted payload reference no longer mapped to a live
	// slot (the underlying packet is accounted in FaultLost when its
	// orphaned slot reconciles); DatapathPanics counts contained panics.
	Remapped   uint64
	Evacuated  uint64
	DrainShed  uint64
	GhostDrops uint64
	//wfqlint:ignore conservation watchdog telemetry counts trips, not packets
	WatchdogTrips uint64
	//wfqlint:ignore conservation panic telemetry counts contained panics, not packets
	DatapathPanics uint64
	//wfqlint:ignore conservation merge telemetry counts forced deliveries past a lagging lane, not packets
	MergeForced uint64
	Supervision supervisor.Stats

	// Per-lane ledger breakdown (the summands of the counters above).
	LaneLedgers []LaneLedger

	// Occupancy gauges.
	RingLens       []int
	LaneLens       []int
	SorterLen      int
	ServedOccupied int
	InFlight       int

	// Enqueue-to-extract wall-clock latency over (up to) the most recent
	// latencyWindow extractions.
	//wfqlint:ignore conservation latency telemetry over a sliding sample window, not packet accounting
	LatencyCount  uint64
	LatencyMeanNs float64
	LatencyP99Ns  float64
	LatencyMaxNs  float64

	// Modelled-hardware view: the per-lane cycle accounting underneath
	// the wall-clock numbers (DESIGN.md §11 relates the two).
	WindowCycles int
	//wfqlint:ignore conservation modelled-cycle gauge, not a packet counter
	MaxLaneCycles uint64
	//wfqlint:ignore conservation modelled-cycle gauge, not a packet counter
	SumLaneCycles uint64
	ModelSpeedup  float64
	ModeledMpps   float64

	// Lane balance and per-lane fabric port pressure, for /metrics.
	LaneLoad     metrics.LaneStats
	FabricLanes  []LaneFabricStats
	RingOccupied int
}

// LaneFabricStats is one lane's memory-fabric pressure snapshot.
type LaneFabricStats struct {
	Lane    int
	Regions []metrics.PortPressure
}

// itemOp discriminates what an item asks of the lane goroutine.
type itemOp uint8

const (
	// opSubmit inserts the packet (the zero value: every pre-existing
	// construction site stays a plain insert).
	opSubmit itemOp = iota
	// opCancel removes the oldest resident packet matching (tag,
	// payload) and charges it to the Removed ledger.
	opCancel
	// opReweight moves the oldest resident (tag, payload) packet to
	// newTag, re-entering it as the newest among equals.
	opReweight
)

// item is one submission in flight through a lane ring, control ring,
// or transfer inbox. tag is always the caller's tag. accounted marks a
// packet that already entered the Inserted ledger (an evacuee or
// reweighted packet moving between lanes) so re-ingestion never
// double-counts it.
type item struct {
	op        itemOp
	tag       int
	payload   int
	newTag    int // valid for opReweight
	submitNs  int64
	accounted bool
}

// slot is one entry of a lane's payload indirection table: the lane
// sorter stores the slot index, the slot remembers the caller's tag,
// payload, and the submission timestamp.
type slot struct {
	tag      int
	payload  int
	submitNs int64
	live     bool
}

// outEntry is one extracted entry in flight on a lane's served ring,
// waiting for the merge stage to deliver it in global tag order.
type outEntry struct {
	tag      int
	payload  int
	submitNs int64
}

// latencyWindow is the sliding sample window for latency percentiles.
const latencyWindow = 8192

// Engine is the concurrent serving runtime. Build with New, Start it,
// Submit from any number of goroutines, consume Served until it closes,
// Stop to drain gracefully.
type Engine struct {
	cfg    Config
	sorter *sharded.ShardedSorter
	sup    *supervisor.Supervisor

	lanes []*laneWorker

	out       chan Served
	done      chan struct{} // closed when the merge stage (last goroutine) exits
	drainReq  chan struct{} // closed by Stop once in-flight submits settle
	terminate chan struct{} // closed on a terminal datapath error
	mergeWake chan struct{} // lane → merge doorbell

	abortDrain chan struct{} // global drain abort: the merge stage is wedged
	abortOnce  sync.Once
	failOnce   sync.Once
	softOnce   sync.Once
	runErr     error // terminal error; written once before terminate closes
	softErr    error // non-terminal drain-abort error; written once before done closes

	red   *aqm.RED
	redMu sync.Mutex

	// quar mirrors the supervisor's quarantine set for the Submit fast
	// path (atomic reads, no supervisor lock on ingest).
	quar []atomic.Bool

	started  atomic.Bool
	stopping atomic.Bool
	draining atomic.Bool
	subWG    sync.WaitGroup
	laneWG   sync.WaitGroup
	stopOnce sync.Once

	// drainArrived is the drain barrier: lanes that have emptied their
	// backlog arrive here; only after every lane arrives can no lane
	// produce into another's transfer inbox, so each lane then runs one
	// final sweep before exiting.
	drainArrived atomic.Int32

	// Ingest-side and merge-side global counters.
	submitted     atomic.Uint64
	dropsRing     atomic.Uint64
	dropsRED      atomic.Uint64
	cancelDrops   atomic.Uint64
	remapped      atomic.Uint64
	watchdogTrips atomic.Uint64
	mergeForced   atomic.Uint64
	mergeProgress atomic.Uint64
	mergeBlocked  atomic.Bool

	windowCycles int

	mu     sync.Mutex // guards the latency reservoir
	latBuf []int64    // circular latency sample window
	latPos int
	latN   uint64
}

// New builds an engine. The configuration is validated and defaulted via
// Config.Validate.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := sharded.New(sharded.Config{
		Lanes:        cfg.Lanes,
		LaneCapacity: cfg.LaneCapacity,
		Partition:    cfg.Partition,
		MemTech:      cfg.MemTech,
		LaneFabrics:  cfg.LaneFabrics,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	sup, err := supervisor.New(cfg.Lanes, cfg.Supervision)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		cfg:          cfg,
		sorter:       s,
		sup:          sup,
		lanes:        make([]*laneWorker, cfg.Lanes),
		out:          make(chan Served, cfg.OutBuffer),
		done:         make(chan struct{}),
		drainReq:     make(chan struct{}),
		terminate:    make(chan struct{}),
		mergeWake:    make(chan struct{}, 1),
		abortDrain:   make(chan struct{}),
		quar:         make([]atomic.Bool, cfg.Lanes),
		windowCycles: s.Lane(0).CyclesPerWindow(),
		latBuf:       make([]int64, 0, latencyWindow),
	}
	for i := range e.lanes {
		e.lanes[i] = newLaneWorker(e, i)
	}
	if cfg.Policy == PolicyRED {
		red, err := aqm.NewRED(cfg.RED)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.red = red
	}
	return e, nil
}

// Lanes returns the lane count.
func (e *Engine) Lanes() int { return e.sorter.Lanes() }

// TagRange returns the number of representable tag values.
func (e *Engine) TagRange() int { return e.sorter.TagRange() }

// Capacity returns the total sorter links across lanes (the in-sorter
// occupancy ceiling; rings add roughly Lanes×RingSize on top).
func (e *Engine) Capacity() int { return e.sorter.Capacity() }

// Served returns the consumer channel. It is closed after a graceful
// drain completes (or the datapath dies); consumers must keep receiving
// until then.
func (e *Engine) Served() <-chan Served { return e.out }

// Start spawns one datapath goroutine per lane, the merge stage, and
// the watchdog. It may be called once.
func (e *Engine) Start() error {
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("engine: already started")
	}
	for i := range e.lanes {
		e.laneWG.Add(1)
		go e.laneLoop(i)
	}
	go e.mergeLoop()
	go e.watchdog()
	return nil
}

// remapLane routes a tag around quarantined lanes: a tag owned by a
// healthy lane goes to its partition-home lane; a tag owned by a
// quarantined lane goes to the nearest healthy lane. Lane sorters hold
// the full tag range, so routing a packet to a foreign lane perturbs
// only the merge interleaving, never the tag itself (the SP-PIFO trade:
// slightly approximate order beats no service). ok is false when no
// healthy lane remains.
func (e *Engine) remapLane(tag int) (lane int, ok bool) {
	lane = e.sorter.LaneFor(tag)
	if !e.quar[lane].Load() {
		return lane, true
	}
	n := e.cfg.Lanes
	for d := 1; d < n; d++ {
		h := (lane + d) % n
		if !e.quar[h].Load() {
			return h, true
		}
	}
	return lane, false
}

// Submit offers one (tag, payload) to the engine from any goroutine. It
// reports whether the submission was admitted: under PolicyDropTail and
// PolicyRED an overloaded engine sheds load by returning (false, nil)
// and counting the drop; under PolicyBlock it waits for ring space. The
// error is non-nil only for invalid tags or a stopped engine.
func (e *Engine) Submit(tag, payload int) (admitted bool, err error) {
	if !e.started.Load() {
		return false, ErrNotStarted
	}
	if e.stopping.Load() || e.terminated() || e.stopped() {
		return false, ErrStopped
	}
	e.subWG.Add(1)
	defer e.subWG.Done()
	// Re-check after registering with the in-flight group: Stop waits on
	// the group after setting the flag, so a Submit that observes
	// stopping false here is guaranteed to finish before the drain scan.
	// terminated/stopped are re-checked too — once the datapath has died
	// no lane will ever drain the rings, so an admitted push would be a
	// silently lost packet (Submitted != Inserted) behind a true return.
	if e.stopping.Load() || e.terminated() || e.stopped() {
		return false, ErrStopped
	}
	if tag < 0 || tag >= e.sorter.TagRange() {
		return false, fmt.Errorf("engine: tag %d outside [0,%d)", tag, e.sorter.TagRange())
	}
	lane, ok := e.remapLane(tag)
	if !ok {
		return false, fmt.Errorf("engine: all lanes quarantined: %w", ErrStopped)
	}
	lw := e.lanes[lane]
	it := item{tag: tag, payload: payload, submitNs: time.Now().UnixNano()}
	switch e.cfg.Policy {
	case PolicyDropTail:
		if !lw.tryPush(it) {
			e.dropsRing.Add(1)
			return false, nil
		}
	case PolicyRED:
		e.redMu.Lock()
		admit := e.red.Arrive()
		e.redMu.Unlock()
		if !admit {
			e.dropsRED.Add(1)
			return false, nil
		}
		if err := e.blockPush(lw, it); err != nil {
			e.redDepart(1)
			return false, err
		}
	default: // PolicyBlock
		if err := e.blockPush(lw, it); err != nil {
			return false, err
		}
	}
	e.submitted.Add(1)
	lw.wake()
	return true, nil
}

// blockPush waits for shard-ring space on lw: the producer-side
// backpressure of PolicyBlock and an admitted PolicyRED packet.
func (e *Engine) blockPush(lw *laneWorker, it item) error {
	for {
		if lw.tryPush(it) {
			return nil
		}
		select {
		case <-lw.space:
		case <-e.done:
			return ErrStopped
		case <-e.terminate:
			return ErrStopped
		case <-time.After(time.Millisecond):
			// The single space token may have gone to another waiting
			// producer; rescan.
		}
	}
}

// Cancel asks the engine to remove the oldest resident packet matching
// (tag, payload) — the timer-cancellation primitive. The request rides
// the owning lane's control ring and executes on that lane's datapath
// goroutine as a charged circuit operation (tree search, translation
// read, list unlink); a removed packet is accounted in Stats.Removed,
// never delivered, never lost. Cancel reports whether the request was
// admitted: false with a nil error means the control ring was full
// (counted in CancelDrops; retry later). A request whose target has
// already been served, cancelled, or evacuated executes as a miss,
// counted in CancelMisses — by then the request races the packet's
// departure, and the departure won.
func (e *Engine) Cancel(tag, payload int) (bool, error) {
	return e.submitControl(item{op: opCancel, tag: tag, payload: payload})
}

// Reweight asks the engine to move the oldest resident packet matching
// (tag, payload) to newTag — the flow re-weighting primitive. The
// packet re-enters as the newest among equal tags and is still
// delivered exactly once; reweights appear in Stats.Reweights and on
// neither side of the conservation identity. Admission and miss
// semantics match Cancel.
func (e *Engine) Reweight(tag, payload, newTag int) (bool, error) {
	if newTag < 0 || newTag >= e.sorter.TagRange() {
		return false, fmt.Errorf("engine: reweight tag %d outside [0,%d)", newTag, e.sorter.TagRange())
	}
	return e.submitControl(item{op: opReweight, tag: tag, payload: payload, newTag: newTag})
}

// submitControl routes one control request to the target tag's
// partition-home lane. Control requests never block: a full control
// ring refuses the request so a cancellation storm cannot wedge the
// producer the way PolicyBlock admission can.
func (e *Engine) submitControl(it item) (bool, error) {
	if !e.started.Load() {
		return false, ErrNotStarted
	}
	if e.stopping.Load() || e.terminated() || e.stopped() {
		return false, ErrStopped
	}
	e.subWG.Add(1)
	defer e.subWG.Done()
	if e.stopping.Load() || e.terminated() || e.stopped() {
		return false, ErrStopped
	}
	if it.tag < 0 || it.tag >= e.sorter.TagRange() {
		return false, fmt.Errorf("engine: tag %d outside [0,%d)", it.tag, e.sorter.TagRange())
	}
	it.submitNs = time.Now().UnixNano()
	lw := e.lanes[e.sorter.LaneFor(it.tag)]
	if !lw.pushControl(it) {
		e.cancelDrops.Add(1)
		return false, nil
	}
	lw.wake()
	return true, nil
}

// InjectLane hands one chaos action to lane i's datapath goroutine,
// which runs it before its next scheduling pass with full panic
// containment — a panicking action exercises exactly that lane's
// datapath-panic recovery path. This is the chaos seam used by
// cmd/chaoslab and the fault-containment fuzz harness: the closure runs
// on the goroutine that owns lane i's sorter, fabric, and slot table,
// so it may corrupt them (e.g. via a fault.Injector) without racing the
// datapath. Actions that touch lane j's state must be injected into
// lane j.
func (e *Engine) InjectLane(lane int, fn func()) error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	if lane < 0 || lane >= len(e.lanes) {
		return fmt.Errorf("engine: inject lane %d outside [0,%d)", lane, len(e.lanes))
	}
	lw := e.lanes[lane]
	select {
	case lw.inject <- fn:
		lw.wake()
		return nil
	case <-e.done:
		return ErrStopped
	case <-e.terminate:
		return ErrStopped
	}
}

// Inject hands one chaos action to lane 0's datapath goroutine (the
// single-lane-targeting form of InjectLane, kept for campaigns that
// attack one fixed lane).
func (e *Engine) Inject(fn func()) error { return e.InjectLane(0, fn) }

// Stop begins a graceful shutdown: new submissions are rejected with
// ErrStopped, in-flight ones complete, every lane drains its rings
// through its sorter, every queued entry is extracted and delivered in
// merge order, and the Served channel is closed. If the consumer has
// wedged — or one lane has — the per-component drain watchdogs
// (Config.DrainTimeout) abort that component's drain and shed its
// remainder accountably rather than hanging forever. It returns the
// datapath's terminal error, if any (nil after a clean drain), and is
// safe to call more than once.
func (e *Engine) Stop() error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.stopOnce.Do(func() {
		e.stopping.Store(true)
		e.subWG.Wait()
		e.draining.Store(true)
		close(e.drainReq)
	})
	<-e.done
	if e.runErr != nil {
		return e.runErr
	}
	return e.softErr
}

// fail records the terminal datapath error and signals every goroutine
// to exit. First writer wins; the write is ordered before the terminate
// close (and so before done closes and Stop returns).
func (e *Engine) fail(err error) {
	e.failOnce.Do(func() {
		e.runErr = err
		close(e.terminate)
	})
}

// failSoft records a non-terminal shutdown diagnostic (an aborted
// drain): Stop reports it, but the engine still drains what it can.
func (e *Engine) failSoft(err error) {
	e.softOnce.Do(func() { e.softErr = err })
}

// terminated reports whether a terminal failure has been signalled.
func (e *Engine) terminated() bool {
	select {
	case <-e.terminate:
		return true
	default:
		return false
	}
}

// drainAborted reports whether the global (merge-stage) drain watchdog
// has fired.
func (e *Engine) drainAborted() bool {
	select {
	case <-e.abortDrain:
		return true
	default:
		return false
	}
}

// wakeMerge rings the merge stage's doorbell.
func (e *Engine) wakeMerge() {
	select {
	case e.mergeWake <- struct{}{}:
	default:
	}
}

// redDepart updates the RED occupancy estimate for n departures.
func (e *Engine) redDepart(n int) {
	if e.red == nil {
		return
	}
	e.redMu.Lock()
	for i := 0; i < n; i++ {
		e.red.Depart()
	}
	e.redMu.Unlock()
}

// guardStep runs one lane datapath step, converting a panic into an
// error so the supervision layer can treat it as a fault episode
// instead of killing the engine.
func (e *Engine) guardStep(fn func() (int, error)) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errDatapathPanic, r)
		}
	}()
	return fn()
}

// guardAction runs one injected chaos action with panic containment.
func (e *Engine) guardAction(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errDatapathPanic, r)
		}
	}()
	fn()
	return nil
}

// healthyLanes counts lanes not under quarantine.
func (e *Engine) healthyLanes() int {
	n := 0
	for i := range e.quar {
		if !e.quar[i].Load() {
			n++
		}
	}
	return n
}

// servedOccupied sums the served-ring occupancy across lanes (safe from
// any goroutine; best-effort between the owners' cursor updates).
func (e *Engine) servedOccupied() int {
	n := 0
	for _, lw := range e.lanes {
		n += lw.served.Len()
	}
	return n
}

// allLanesDone reports whether every lane goroutine has exited.
func (e *Engine) allLanesDone() bool {
	for _, lw := range e.lanes {
		if !lw.doneFlag.Load() {
			return false
		}
	}
	return true
}

// recordLatency appends one sample to the sliding window.
func (e *Engine) recordLatency(ns int64) {
	e.mu.Lock()
	if len(e.latBuf) < latencyWindow {
		e.latBuf = append(e.latBuf, ns)
	} else {
		e.latBuf[e.latPos] = ns
		e.latPos = (e.latPos + 1) % latencyWindow
	}
	e.latN++
	e.mu.Unlock()
}

// healthState places the engine on its state machine (DESIGN.md §12):
// stopped → healthy ⇄ {degraded, stalled} → draining → stopped/failed.
func (e *Engine) healthState() string {
	switch {
	case !e.started.Load():
		return "stopped"
	case e.stopped():
		// runErr/softErr are written before done closes, so these reads
		// are ordered after the writes.
		if e.runErr != nil || e.softErr != nil {
			return "failed"
		}
		return "stopped"
	case e.stopping.Load():
		return "draining"
	default:
		return e.sup.EngineState().String()
	}
}

// Ready reports readiness: the engine is running and fully healthy (no
// quarantined, rebuilding, or stalled lane, not draining). A degraded
// engine still serves — liveness holds — but reports not-ready so load
// balancers steer new work away while it recovers.
func (e *Engine) Ready() bool { return e.healthState() == "healthy" }

// StatsSnapshot returns the engine counters and gauges, summing the
// per-lane ledgers. Safe to call from any goroutine at any time; gauges
// may trail the lane datapaths by a few batches.
func (e *Engine) StatsSnapshot() Stats {
	st := Stats{
		Running:       e.started.Load() && !e.stopped(),
		Lanes:         e.cfg.Lanes,
		Shards:        e.cfg.Shards,
		Policy:        e.cfg.Policy.String(),
		Label:         e.cfg.Label,
		Health:        e.healthState(),
		Submitted:     e.submitted.Load(),
		DropsRing:     e.dropsRing.Load(),
		DropsRED:      e.dropsRED.Load(),
		CancelDrops:   e.cancelDrops.Load(),
		Remapped:      e.remapped.Load(),
		WatchdogTrips: e.watchdogTrips.Load(),
		MergeForced:   e.mergeForced.Load(),
		Supervision:   e.sup.StatsSnapshot(),
		LaneLedgers:   make([]LaneLedger, len(e.lanes)),
		RingLens:      make([]int, len(e.lanes)),
		LaneLens:      make([]int, len(e.lanes)),
		FabricLanes:   make([]LaneFabricStats, len(e.lanes)),
		WindowCycles:  e.windowCycles,
	}
	st.Ready = st.Health == "healthy"
	laneInserts := make([]uint64, len(e.lanes))
	for i, lw := range e.lanes {
		led := LaneLedger{
			Lane:       i,
			Inserted:   lw.inserted.Load(),
			Extracted:  lw.extracted.Load(),
			Removed:    lw.removed.Load(),
			FaultLost:  lw.faultLost.Load(),
			DrainShed:  lw.drainShed.Load(),
			GhostDrops: lw.ghostDrops.Load(),
			Evacuated:  lw.evacuated.Load(),
		}
		st.LaneLedgers[i] = led
		st.Inserted += led.Inserted
		st.Extracted += led.Extracted
		st.Removed += led.Removed
		st.FaultLost += led.FaultLost
		st.DrainShed += led.DrainShed
		st.GhostDrops += led.GhostDrops
		st.Evacuated += led.Evacuated
		st.CancelMisses += lw.cancelMisses.Load()
		st.Reweights += lw.reweights.Load()
		st.Batches += lw.batches.Load()
		st.BatchedOps += lw.batchedOps.Load()
		st.Recoveries += lw.recoveries.Load()
		st.DatapathIdles += lw.idles.Load()
		st.DatapathPanics += lw.panics.Load()
		if mb := int(lw.maxBatch.Load()); mb > st.MaxBatch {
			st.MaxBatch = mb
		}
		st.RingLens[i] = lw.ringsOccupied()
		st.RingOccupied += st.RingLens[i]
		st.LaneLens[i] = int(lw.sorterLen.Load())
		st.SorterLen += st.LaneLens[i]
		st.ServedOccupied += lw.served.Len()
		laneInserts[i] = led.Inserted
		if m := lw.mirror.Load(); m != nil {
			st.FabricLanes[i] = LaneFabricStats{Lane: i, Regions: m.fabric}
			st.SumLaneCycles += m.cycles
			if m.cycles > st.MaxLaneCycles {
				st.MaxLaneCycles = m.cycles
			}
		} else {
			st.FabricLanes[i] = LaneFabricStats{Lane: i}
		}
	}
	st.LaneLoad = metrics.LaneLoad(laneInserts)
	st.InFlight = st.RingOccupied + st.SorterLen + st.ServedOccupied
	if st.MaxLaneCycles > 0 {
		st.ModelSpeedup = float64(st.SumLaneCycles) / float64(st.MaxLaneCycles)
	}
	e.mu.Lock()
	st.LatencyCount = e.latN
	if n := len(e.latBuf); n > 0 {
		s := make([]int64, n)
		copy(s, e.latBuf)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		sum := int64(0)
		for _, v := range s {
			sum += v
		}
		st.LatencyMeanNs = float64(sum) / float64(n)
		st.LatencyP99Ns = float64(s[n*99/100])
		st.LatencyMaxNs = float64(s[n-1])
	}
	e.mu.Unlock()
	if st.ModelSpeedup > 0 && st.WindowCycles > 0 {
		st.ModeledMpps = e.cfg.ClockHz / float64(st.WindowCycles) * st.ModelSpeedup / 1e6
	}
	return st
}

// stopped reports whether the datapath has exited.
func (e *Engine) stopped() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}
