// Package engine is the line-rate serving runtime on top of the sharded
// sort/retrieve circuit: the layer that turns the cycle-accurate model
// into a long-running concurrent service with admission backpressure and
// live observability (the wfqd daemon and sortbench -engine both drive
// it).
//
// The shape follows the software packet-scheduling literature. Eiffel
// (Saeed et al., NSDI'19) shows that software schedulers reach line rate
// by amortizing per-packet costs over bucketed queue operations; here N
// producers submit into per-lane bounded rings and a single datapath
// goroutine drains them in batches through ShardedSorter.InsertBatch, so
// the per-packet synchronization cost is one ring operation and the
// sorter cost is amortized over the batch. The PIFO line of work
// (Sivaraman et al.) frames the serving loop itself: admit with a
// computed rank, extract the minimum, repeat — the engine's extractor is
// exactly that loop, honoring the paper's fixed operation window on
// every lane.
//
// Concurrency contract: producers call Submit from any goroutine; the
// sorter is owned by one datapath goroutine (the modelled hardware is a
// synchronous pipeline, so all sorter operations serialize through it);
// consumers receive Served records from the Served channel and MUST keep
// receiving until it closes, or the bounded channel backpressures the
// datapath (by design: an unread output queue is a full output queue).
//
// Fault domains: with RecoverFaults set, every lane is a supervised
// fault domain (internal/supervisor). A corrupt-state error or datapath
// panic triggers per-lane Audit and bounded retry-with-backoff Rebuild
// from the authoritative tag store; a lane that cannot be rebuilt — or
// that keeps faulting — is quarantined, its surviving entries are
// evacuated onto healthy lanes, and its tag slice is remapped there
// until a reinstate probe succeeds (degraded mode: slightly perturbed
// order, SP-PIFO-style, instead of no service). A deadline watchdog
// converts a wedged drain into accountable shedding and flags a stalled
// datapath as not-ready. The accounting invariant
// Inserted == Extracted + FaultLost + in-sorter holds across every
// recovery, quarantine, and aborted drain: no packet is ever lost
// unaccounted. DESIGN.md §12 documents the state machine and policies.
//
//wfqlint:ignore-file determinism the serving engine is intentionally wall-clock code: it measures real enqueue-to-extract latency and real throughput, not simulated time (DESIGN.md §11)
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfqsort/internal/aqm"
	"wfqsort/internal/hwsim"
	"wfqsort/internal/membus"
	"wfqsort/internal/metrics"
	"wfqsort/internal/sharded"
	"wfqsort/internal/supervisor"
	"wfqsort/internal/taglist"
)

// Sentinel errors returned by Engine operations.
var (
	// ErrNotStarted is returned by Submit/Stop before Start.
	ErrNotStarted = errors.New("engine: not started")
	// ErrStopped is returned by Submit once shutdown has begun (or the
	// datapath died on an unrecoverable error).
	ErrStopped = errors.New("engine: stopped")

	// errDatapathPanic marks a panic recovered inside one datapath step,
	// so the supervision layer can treat it as a fault episode.
	errDatapathPanic = errors.New("engine: datapath panic")
	// errDrainAborted is the internal signal that the drain watchdog
	// fired while the datapath was wedged delivering to the consumer.
	errDrainAborted = errors.New("engine: drain aborted")
)

// Policy selects the ingestion backpressure behaviour when a submission
// ring is full (the engine-level analogue of scheduler.FullPolicy).
type Policy int

const (
	// PolicyBlock makes Submit wait for ring space: backpressure
	// propagates to the producer, nothing is dropped. The default.
	PolicyBlock Policy = iota + 1
	// PolicyDropTail drops the submission when its lane ring is full,
	// counting it in Stats.DropsRing (classic tail drop).
	PolicyDropTail
	// PolicyRED applies random early detection (internal/aqm) on the
	// engine occupancy before ring admission: drops begin
	// probabilistically before the rings fill, counted in Stats.DropsRED.
	// A submission RED admits still blocks for ring space (an admitted
	// packet is never silently lost).
	PolicyRED
)

func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropTail:
		return "drop-tail"
	case PolicyRED:
		return "red"
	default:
		return "unknown"
	}
}

// Config describes an engine. The zero value of every field selects a
// documented default, so Config{} is a valid 4-lane engine.
type Config struct {
	// Lanes is the sharded sorter's lane count (power of two, 1..64).
	// Default 4.
	Lanes int
	// LaneCapacity is the number of tag-store links per lane.
	// Default 1024.
	LaneCapacity int
	// Partition is the tag-space split (default interleaved).
	Partition sharded.Partition
	// MemTech is each lane's tag-store memory technology (default SDR).
	MemTech taglist.MemTech
	// LaneFabrics, when non-nil, supplies one pre-built memory fabric
	// per lane (len == Lanes), e.g. to attach a fault campaign. Attach
	// observers before Start: the datapath owns the fabrics afterwards.
	LaneFabrics []*membus.Fabric
	// RingSize is the per-lane submission ring depth. Default 256.
	RingSize int
	// BatchSize caps how many submissions one drain pass moves from each
	// lane ring into an InsertBatch, and how many entries one extractor
	// pass serves. Default 64.
	BatchSize int
	// Policy is the ring-full backpressure policy (default PolicyBlock).
	Policy Policy
	// RED configures early detection when Policy is PolicyRED; the zero
	// value selects thresholds at 1/4 and 3/4 of the total in-flight
	// capacity (rings + sorter) with maxP 0.05. Invalid thresholds
	// (min ≥ max, out-of-range probabilities) are rejected by Validate.
	RED aqm.REDConfig
	// OutBuffer is the Served channel depth. Default 1024.
	OutBuffer int
	// RecoverFaults enables the fault containment path: corrupt-state
	// errors and datapath panics drive the per-lane supervision state
	// machine (rebuild with bounded retries, quarantine, reinstate)
	// instead of stopping the engine.
	RecoverFaults bool
	// Supervision tunes the fault-domain state machine (retry budget,
	// backoff, quarantine and reinstate policy). Zero value = documented
	// supervisor defaults. Only consulted when RecoverFaults is set.
	Supervision supervisor.Config
	// DrainTimeout bounds a graceful drain: when Stop is waiting on a
	// consumer that has stopped receiving and the datapath makes no
	// progress for this long, the watchdog aborts the drain and sheds
	// the remaining packets accountably (counted in DrainShed and
	// FaultLost) instead of hanging shutdown forever. Default 5s;
	// negative disables the deadline.
	DrainTimeout time.Duration
	// StallTimeout flags a stalled datapath: no progress for this long
	// with work pending marks the engine stalled (not ready) until
	// progress resumes. Detection only — nothing is shed. Default 2s;
	// negative disables.
	StallTimeout time.Duration
	// ClockHz is the modelled circuit clock used to report modelled
	// packet rates next to wall-clock ones. Defaults to the paper's
	// 143.2 MHz.
	ClockHz float64
}

// Validate checks the configuration and normalizes documented zero-value
// defaults in place. New calls it; callers only need it to pre-validate.
// Misconfigurations — non-power-of-two lanes, zero-capacity rings,
// inverted RED thresholds — are rejected here, not at runtime.
func (c *Config) Validate() error {
	if c.Lanes == 0 {
		c.Lanes = 4
	}
	if c.Lanes < 1 || c.Lanes > 64 || c.Lanes&(c.Lanes-1) != 0 {
		return fmt.Errorf("engine: lanes %d must be a power of two in 1..64", c.Lanes)
	}
	if c.LaneCapacity == 0 {
		c.LaneCapacity = 1024
	}
	if c.LaneCapacity < 2 {
		return fmt.Errorf("engine: lane capacity %d must be at least 2", c.LaneCapacity)
	}
	if c.RingSize == 0 {
		c.RingSize = 256
	}
	if c.RingSize < 1 {
		return fmt.Errorf("engine: ring size %d must be positive", c.RingSize)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("engine: batch size %d must be positive", c.BatchSize)
	}
	if c.Policy == 0 {
		c.Policy = PolicyBlock
	}
	if c.Policy != PolicyBlock && c.Policy != PolicyDropTail && c.Policy != PolicyRED {
		return fmt.Errorf("engine: unknown backpressure policy %d", int(c.Policy))
	}
	if c.OutBuffer == 0 {
		c.OutBuffer = 1024
	}
	if c.OutBuffer < 1 {
		return fmt.Errorf("engine: out buffer %d must be positive", c.OutBuffer)
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 2 * time.Second
	}
	if c.ClockHz == 0 {
		c.ClockHz = 143.2e6
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("engine: clock %v must be positive", c.ClockHz)
	}
	if err := c.Supervision.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if c.Policy == PolicyRED {
		if c.RED.MinThreshold == 0 && c.RED.MaxThreshold == 0 {
			inflight := float64(c.Lanes * (c.LaneCapacity + c.RingSize))
			c.RED = aqm.REDConfig{
				MinThreshold: inflight / 4,
				MaxThreshold: inflight * 3 / 4,
				MaxP:         0.05,
			}
		}
		if err := c.RED.Validate(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
	}
	return nil
}

// Served is one extracted entry delivered to the consumer.
type Served struct {
	// Tag is the finishing tag that was served. Under quarantine
	// remapping this is the tag the caller submitted, not the remapped
	// lane-local tag used inside the degraded sorter.
	Tag int
	// Payload is the value passed to Submit.
	Payload int
	// Latency is the wall-clock enqueue-to-extract time.
	Latency time.Duration
}

// Stats is the engine's counter snapshot, following the repository's
// StatsSnapshot() convention (DESIGN.md §11). Counters are cumulative
// since Start; gauges reflect the datapath's most recent mirror update
// (at most a few batches stale).
type Stats struct {
	Running bool
	Lanes   int
	Policy  string

	// Health is the engine state machine position: healthy, degraded,
	// stalled, draining, failed, or stopped (DESIGN.md §12). Ready is
	// the readiness view: true only while healthy.
	Health string
	Ready  bool

	// Ingest accounting. Offered = Submitted + DropsRing + DropsRED.
	Submitted uint64
	DropsRing uint64
	DropsRED  uint64

	// Datapath accounting. The conservation invariant is
	// Inserted == Extracted + FaultLost + SorterLen.
	Inserted  uint64
	Extracted uint64
	FaultLost uint64

	// Batching effectiveness of the drain loop. Pure telemetry: these
	// count datapath iterations, not packets, so they stay outside the
	// conservation identity by design.
	//wfqlint:ignore conservation batching telemetry counts drain iterations, not packets
	Batches uint64
	//wfqlint:ignore conservation batching telemetry counts sorter ops, not packets
	BatchedOps uint64
	MaxBatch   int
	//wfqlint:ignore conservation recovery telemetry counts fault events, not packets
	Recoveries uint64
	//wfqlint:ignore conservation idle telemetry counts empty drain polls, not packets
	DatapathIdles uint64

	// Fault-domain accounting (DESIGN.md §12). Remapped counts packets
	// routed off a quarantined lane's tag slice; Evacuated counts
	// sorter-resident packets moved to healthy lanes at quarantine
	// time; DrainShed counts packets shed by an aborted drain (also in
	// FaultLost); GhostDrops counts extractions suppressed because a
	// corrupted payload reference no longer mapped to a live slot (the
	// underlying packet is accounted in FaultLost when its orphaned slot
	// reconciles); DatapathPanics counts contained panics.
	Remapped   uint64
	Evacuated  uint64
	DrainShed  uint64
	GhostDrops uint64
	//wfqlint:ignore conservation watchdog telemetry counts trips, not packets
	WatchdogTrips uint64
	//wfqlint:ignore conservation panic telemetry counts contained panics, not packets
	DatapathPanics uint64
	Supervision    supervisor.Stats

	// Occupancy gauges.
	RingLens  []int
	LaneLens  []int
	SorterLen int
	InFlight  int

	// Enqueue-to-extract wall-clock latency over (up to) the most recent
	// latencyWindow extractions.
	//wfqlint:ignore conservation latency telemetry over a sliding sample window, not packet accounting
	LatencyCount  uint64
	LatencyMeanNs float64
	LatencyP99Ns  float64
	LatencyMaxNs  float64

	// Modelled-hardware view: the sharded cycle accounting underneath
	// the wall-clock numbers (DESIGN.md §11 relates the two).
	WindowCycles int
	//wfqlint:ignore conservation modelled-cycle gauge, not a packet counter
	MaxLaneCycles uint64
	//wfqlint:ignore conservation modelled-cycle gauge, not a packet counter
	SumLaneCycles uint64
	ModelSpeedup  float64
	ModeledMpps   float64

	// Lane balance and per-lane fabric port pressure, for /metrics.
	LaneLoad     metrics.LaneStats
	FabricLanes  []LaneFabricStats
	RingOccupied int
}

// LaneFabricStats is one lane's memory-fabric pressure snapshot.
type LaneFabricStats struct {
	Lane    int
	Regions []metrics.PortPressure
}

// item is one submission in flight through a lane ring. tag is the
// caller's tag; quarantine remapping happens at dequeue time so a lane
// quarantined after submission still routes around the damage.
type item struct {
	tag      int
	payload  int
	submitNs int64
}

// slot is one entry of the payload indirection table: the sorter stores
// the slot index, the slot remembers the caller's tag, payload, and the
// submission timestamp (the tag matters because quarantine remapping
// may store a perturbed tag inside the sorter).
type slot struct {
	tag      int
	payload  int
	submitNs int64
	live     bool
}

// latencyWindow is the sliding sample window for latency percentiles.
const latencyWindow = 8192

// Engine is the concurrent serving runtime. Build with New, Start it,
// Submit from any number of goroutines, consume Served until it closes,
// Stop to drain gracefully.
type Engine struct {
	cfg    Config
	sorter *sharded.ShardedSorter
	sup    *supervisor.Supervisor

	rings    []chan item
	notify   chan struct{}
	drainReq chan struct{}
	done     chan struct{}
	out      chan Served
	chaos    chan func()

	abortDrain chan struct{}
	abortOnce  sync.Once

	red   *aqm.RED
	redMu sync.Mutex

	// Datapath-owned state.
	slots       []slot
	free        []int
	carry       []item // dequeued items whose destination lane was full
	panicStreak int

	// quar mirrors the supervisor's quarantine set for the Submit fast
	// path (atomic reads, no supervisor lock on ingest).
	quar []atomic.Bool

	started  atomic.Bool
	stopping atomic.Bool
	draining atomic.Bool
	subWG    sync.WaitGroup
	stopOnce sync.Once
	runErr   error

	submitted  atomic.Uint64
	dropsRing  atomic.Uint64
	dropsRED   atomic.Uint64
	inserted   atomic.Uint64
	extracted  atomic.Uint64
	faultLost  atomic.Uint64
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	maxBatch   atomic.Int64
	recoveries atomic.Uint64
	idles      atomic.Uint64

	remapped      atomic.Uint64
	evacuated     atomic.Uint64
	drainShed     atomic.Uint64
	ghostDrops    atomic.Uint64
	watchdogTrips atomic.Uint64
	panics        atomic.Uint64
	progress      atomic.Uint64

	mu     sync.Mutex // guards mirror + latency reservoir
	mirror mirror
	latBuf []int64 // circular latency sample window
	latPos int
	latN   uint64
}

// mirror holds the gauges the datapath periodically copies out of the
// sorter so StatsSnapshot never touches datapath-owned state.
type mirror struct {
	laneLens     []int
	sorterLen    int
	maxCycles    uint64
	sumCycles    uint64
	modelSpeedup float64
	laneLoad     metrics.LaneStats
	fabric       []LaneFabricStats
}

// New builds an engine. The configuration is validated and defaulted via
// Config.Validate.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := sharded.New(sharded.Config{
		Lanes:        cfg.Lanes,
		LaneCapacity: cfg.LaneCapacity,
		Partition:    cfg.Partition,
		MemTech:      cfg.MemTech,
		LaneFabrics:  cfg.LaneFabrics,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	sup, err := supervisor.New(cfg.Lanes, cfg.Supervision)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		cfg:        cfg,
		sorter:     s,
		sup:        sup,
		rings:      make([]chan item, cfg.Lanes),
		notify:     make(chan struct{}, 1),
		drainReq:   make(chan struct{}),
		done:       make(chan struct{}),
		out:        make(chan Served, cfg.OutBuffer),
		chaos:      make(chan func(), 16),
		abortDrain: make(chan struct{}),
		slots:      make([]slot, s.Capacity()),
		free:       make([]int, 0, s.Capacity()),
		quar:       make([]atomic.Bool, cfg.Lanes),
		latBuf:     make([]int64, 0, latencyWindow),
	}
	for i := range e.rings {
		e.rings[i] = make(chan item, cfg.RingSize)
	}
	for i := s.Capacity() - 1; i >= 0; i-- {
		e.free = append(e.free, i)
	}
	if cfg.Policy == PolicyRED {
		red, err := aqm.NewRED(cfg.RED)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.red = red
	}
	return e, nil
}

// Lanes returns the lane count.
func (e *Engine) Lanes() int { return e.sorter.Lanes() }

// TagRange returns the number of representable tag values.
func (e *Engine) TagRange() int { return e.sorter.TagRange() }

// Capacity returns the total sorter links across lanes (the in-sorter
// occupancy ceiling; rings add Lanes×RingSize on top).
func (e *Engine) Capacity() int { return e.sorter.Capacity() }

// Served returns the consumer channel. It is closed after a graceful
// drain completes (or the datapath dies); consumers must keep receiving
// until then.
func (e *Engine) Served() <-chan Served { return e.out }

// Start spawns the datapath goroutine and its watchdog. It may be
// called once.
func (e *Engine) Start() error {
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("engine: already started")
	}
	go e.run()
	go e.watchdog()
	return nil
}

// remapTag routes a tag around quarantined lanes: a tag owned by a
// healthy lane is returned unchanged; a tag owned by a quarantined lane
// is deterministically perturbed onto the nearest healthy lane (the
// same offset within the interleave group or block, so the service
// order degrades by at most the lane stride — the SP-PIFO trade:
// slightly approximate order beats no service). ok is false when no
// healthy lane remains.
func (e *Engine) remapTag(tag int) (eff int, ok bool) {
	lane := e.sorter.LaneFor(tag)
	if !e.quar[lane].Load() {
		return tag, true
	}
	n := e.cfg.Lanes
	for d := 1; d < n; d++ {
		h := (lane + d) % n
		if e.quar[h].Load() {
			continue
		}
		if e.sorter.Partition() == sharded.PartitionBlocked {
			block := e.sorter.TagRange() / n
			return h*block + tag%block, true
		}
		return tag - lane + h, true
	}
	return tag, false
}

// Submit offers one (tag, payload) to the engine from any goroutine. It
// reports whether the submission was admitted: under PolicyDropTail and
// PolicyRED an overloaded engine sheds load by returning (false, nil)
// and counting the drop; under PolicyBlock it waits for ring space. The
// error is non-nil only for invalid tags or a stopped engine.
func (e *Engine) Submit(tag, payload int) (admitted bool, err error) {
	if !e.started.Load() {
		return false, ErrNotStarted
	}
	if e.stopping.Load() {
		return false, ErrStopped
	}
	e.subWG.Add(1)
	defer e.subWG.Done()
	// Re-check after registering with the in-flight group: Stop waits on
	// the group after setting the flag, so a Submit that observes
	// stopping false here is guaranteed to finish before the drain scan.
	if e.stopping.Load() {
		return false, ErrStopped
	}
	if tag < 0 || tag >= e.sorter.TagRange() {
		return false, fmt.Errorf("engine: tag %d outside [0,%d)", tag, e.sorter.TagRange())
	}
	// Route around quarantined lanes: the ring is chosen by the
	// effective destination, the item keeps the caller's tag.
	eff, ok := e.remapTag(tag)
	if !ok {
		return false, fmt.Errorf("engine: all lanes quarantined: %w", ErrStopped)
	}
	it := item{tag: tag, payload: payload, submitNs: time.Now().UnixNano()}
	ring := e.rings[e.sorter.LaneFor(eff)]
	switch e.cfg.Policy {
	case PolicyDropTail:
		select {
		case ring <- it:
		default:
			e.dropsRing.Add(1)
			return false, nil
		}
	case PolicyRED:
		e.redMu.Lock()
		ok := e.red.Arrive()
		e.redMu.Unlock()
		if !ok {
			e.dropsRED.Add(1)
			return false, nil
		}
		select {
		case ring <- it:
		case <-e.done:
			e.redDepart(1)
			return false, ErrStopped
		}
	default: // PolicyBlock
		select {
		case ring <- it:
		case <-e.done:
			return false, ErrStopped
		}
	}
	e.submitted.Add(1)
	select {
	case e.notify <- struct{}{}:
	default:
	}
	return true, nil
}

// Inject hands one chaos action to the datapath goroutine, which runs
// it before its next scheduling pass with full panic containment — a
// panicking action exercises exactly the engine's datapath-panic
// recovery path. This is the chaos seam used by cmd/chaoslab and the
// fault-containment fuzz harness: the closure runs on the goroutine
// that owns the sorter, lane fabrics, and slot table, so it may corrupt
// them (e.g. via a fault.Injector) without racing the datapath.
func (e *Engine) Inject(fn func()) error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	select {
	case e.chaos <- fn:
		select {
		case e.notify <- struct{}{}:
		default:
		}
		return nil
	case <-e.done:
		return ErrStopped
	}
}

// Stop begins a graceful shutdown: new submissions are rejected with
// ErrStopped, in-flight ones complete, the rings are drained through the
// sorter, every queued entry is extracted and delivered, and the Served
// channel is closed. If the consumer has wedged, the drain watchdog
// (Config.DrainTimeout) aborts the drain and sheds the remainder
// accountably rather than hanging forever. It returns the datapath's
// terminal error, if any (nil after a clean drain), and is safe to call
// more than once.
func (e *Engine) Stop() error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.stopOnce.Do(func() {
		e.stopping.Store(true)
		e.subWG.Wait()
		e.draining.Store(true)
		close(e.drainReq)
	})
	<-e.done
	return e.runErr
}

// redDepart updates the RED occupancy estimate for n departures.
func (e *Engine) redDepart(n int) {
	if e.red == nil {
		return
	}
	e.redMu.Lock()
	for i := 0; i < n; i++ {
		e.red.Depart()
	}
	e.redMu.Unlock()
}

// guard runs one datapath step, converting a panic into an error so
// the supervision layer can treat it as a fault episode instead of
// killing the engine.
func (e *Engine) guard(fn func() (int, error)) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errDatapathPanic, r)
		}
	}()
	return fn()
}

// run is the datapath goroutine: the only goroutine that touches the
// sorter, the slot table, and the Served channel sender side.
func (e *Engine) run() {
	defer close(e.done)
	defer close(e.out)
	defer func() {
		if r := recover(); r != nil {
			// Backstop containment: a panic escaping the guarded steps
			// (bookkeeping, not datapath work) becomes a terminal error so
			// producers and consumers unblock instead of deadlocking.
			err := fmt.Errorf("engine: datapath panic: %v", r)
			if e.cfg.RecoverFaults {
				if rerr := e.superviseRepair(); rerr == nil {
					err = fmt.Errorf("engine: datapath panic (state repaired, engine stopped): %v", r)
				}
			}
			e.runErr = err
		}
	}()

	const mirrorEvery = 8
	sinceMirror := mirrorEvery // force a mirror on the first pass
	draining := false
	for {
		worked, failed := false, false
		ops := 0
		// Chaos seam: injected actions run here, panic-contained. A
		// failed (repaired) action counts as a failed step so consecutive
		// panics accumulate against the streak budget.
		select {
		case fn := <-e.chaos:
			if _, err := e.guard(func() (int, error) { fn(); return 0, nil }); err != nil {
				if term := e.handleFailure("chaos", err); term != nil {
					e.runErr = term
					return
				}
				failed, worked = true, true
			}
		default:
		}
		if e.drainAborted() {
			e.finalizeAbort()
			return
		}

		if n, err := e.guard(e.drainRings); err != nil {
			if term := e.handleFailure("insert-batch", err); term != nil {
				e.runErr = term
				return
			}
			failed, worked = true, true // a repair is progress
		} else if n > 0 {
			worked = true
			ops += n
		}
		if n, err := e.guard(e.serve); err != nil {
			if errors.Is(err, errDrainAborted) {
				e.finalizeAbort()
				return
			}
			if term := e.handleFailure("extract", err); term != nil {
				e.runErr = term
				return
			}
			failed, worked = true, true
		} else if n > 0 {
			worked = true
			ops += n
		}
		if !failed {
			e.panicStreak = 0
		}
		if ops > 0 && e.cfg.RecoverFaults {
			for _, lane := range e.sup.OnOps(uint64(ops)) {
				e.probeLane(lane)
			}
		}

		if sinceMirror++; worked && sinceMirror >= mirrorEvery {
			e.updateMirror()
			sinceMirror = 0
		}
		if worked {
			e.progress.Add(1)
			if !draining {
				select {
				case <-e.drainReq:
					draining = true
				default:
				}
			}
			continue
		}
		if draining && e.ringsEmpty() && len(e.carry) == 0 && e.sorter.Len() == 0 {
			// The sorter is empty, so any still-live slot is an orphan left
			// behind by a ghost extraction (duplicate payload reference):
			// count it lost so the conservation invariant closes.
			e.sweepOrphanSlots()
			e.updateMirror()
			return
		}
		e.idles.Add(1)
		e.updateMirror()
		sinceMirror = 0
		if draining {
			// Rings and sorter can only be non-empty here transiently
			// (lane-full backoff); yield and rescan.
			continue
		}
		select {
		case <-e.notify:
		case <-e.drainReq:
			draining = true
		}
	}
}

// drainRings moves up to BatchSize submissions per lane from the rings
// (after any carried-over items) into one amortized InsertBatch, bounded
// by each destination lane's free links so a full lane backpressures
// instead of failing the batch. Quarantine remapping happens here, at
// dequeue time: items destined for a quarantined lane are redirected to
// the nearest healthy lane; items whose destination is full are carried
// to the next pass.
func (e *Engine) drainRings() (int, error) {
	freeLinks := make([]int, e.sorter.Lanes())
	for i := range freeLinks {
		freeLinks[i] = e.cfg.LaneCapacity - e.sorter.Lane(i).Len()
	}
	reqs := make([]sharded.Request, 0, e.cfg.BatchSize*len(e.rings))
	shed := 0
	take := func(it item) {
		eff, ok := e.remapTag(it.tag)
		if !ok {
			// No healthy lane remains; shed accountably (the datapath is
			// about to go terminal anyway).
			e.inserted.Add(1)
			e.faultLost.Add(1)
			e.redDepart(1)
			shed++
			return
		}
		dest := e.sorter.LaneFor(eff)
		if freeLinks[dest] <= 0 {
			e.carry = append(e.carry, it)
			return
		}
		idx, ok := e.allocSlot(it)
		if !ok {
			// Capacity exhausted (only possible after fault losses
			// outran reconciliation); shed accountably.
			e.inserted.Add(1)
			e.faultLost.Add(1)
			e.redDepart(1)
			shed++
			return
		}
		if eff != it.tag {
			e.remapped.Add(1)
		}
		freeLinks[dest]--
		e.inserted.Add(1)
		e.progress.Add(1)
		reqs = append(reqs, sharded.Request{Tag: eff, Payload: idx})
	}
	carried := e.carry
	e.carry = nil
	for _, it := range carried {
		take(it)
	}
	for _, ring := range e.rings {
		for n := 0; n < e.cfg.BatchSize; n++ {
			select {
			case it := <-ring:
				take(it)
			default:
				n = e.cfg.BatchSize
			}
		}
	}
	if len(reqs) == 0 {
		return shed, nil
	}
	_, err := e.sorter.InsertBatch(reqs)
	e.batches.Add(1)
	e.batchedOps.Add(uint64(len(reqs)))
	if m := int64(len(reqs)); m > e.maxBatch.Load() {
		e.maxBatch.Store(m)
	}
	if err != nil {
		// The caller repairs; whatever the recovery cannot preserve is
		// counted by the slot reconciliation (every dequeued item above is
		// already in Inserted, so conservation closes).
		return shed, err
	}
	return shed + len(reqs), nil
}

// serve extracts up to BatchSize entries, delivering each to the Served
// channel (blocking there is the consumer-side backpressure; during a
// drain the watchdog can abort a wedged delivery).
func (e *Engine) serve() (int, error) {
	served := 0
	for served < e.cfg.BatchSize && e.sorter.Len() > 0 {
		entry, err := e.sorter.ExtractMin()
		if err != nil {
			if errors.Is(err, taglist.ErrEmpty) {
				break
			}
			return served, err
		}
		now := time.Now().UnixNano()
		sl := e.releaseSlot(entry.Payload)
		if !sl.live {
			// Ghost entry: its payload no longer maps to a live slot — a
			// corrupted payload field made two entries reference one slot,
			// or a recovery already reclaimed it. The packet it belonged
			// to is (or will be) accounted as FaultLost when its orphaned
			// slot is reconciled, so emitting the ghost would double-count
			// an extraction. Drop it silently; it still counts as an op.
			e.ghostDrops.Add(1)
			e.progress.Add(1)
			served++
			continue
		}
		lat := time.Duration(now - sl.submitNs)
		e.recordLatency(int64(lat))
		select {
		case e.out <- Served{Tag: sl.tag, Payload: sl.payload, Latency: lat}:
			e.extracted.Add(1)
			e.redDepart(1)
			e.progress.Add(1)
			served++
		case <-e.abortDrain:
			// The drain watchdog fired while this delivery was wedged:
			// shed it accountably and finalize.
			e.faultLost.Add(1)
			e.drainShed.Add(1)
			e.redDepart(1)
			return served, errDrainAborted
		}
	}
	return served, nil
}

// handleFailure applies the supervision policy to a datapath error. A
// nil return means the engine repaired its state and the caller may
// continue; non-nil is terminal.
func (e *Engine) handleFailure(op string, err error) error {
	isPanic := errors.Is(err, errDatapathPanic)
	if isPanic {
		e.panics.Add(1)
		e.panicStreak++
	}
	if !e.cfg.RecoverFaults || (!errors.Is(err, hwsim.ErrCorrupt) && !isPanic) {
		return fmt.Errorf("engine: %s: %w", op, err)
	}
	if isPanic && e.panicStreak > e.cfg.Supervision.MaxRetries {
		return fmt.Errorf("engine: %s: %d consecutive datapath panics exhaust the retry budget: %w",
			op, e.panicStreak, err)
	}
	if rerr := e.superviseRepair(); rerr != nil {
		return fmt.Errorf("engine: %s: %w (repair failed: %v)", op, err, rerr)
	}
	e.recoveries.Add(1)
	return nil
}

// superviseRepair is the per-lane fault-domain recovery pass: audit
// every in-service lane, drive the supervisor's bounded
// retry-with-backoff rebuild for the damaged ones, quarantine the lanes
// the supervisor gives up on (evacuating their survivors onto healthy
// lanes), resynchronize the select tree, then reconcile the slot table
// so every unrecoverable packet is counted.
func (e *Engine) superviseRepair() error {
	for i := 0; i < e.sorter.Lanes(); i++ {
		if e.quar[i].Load() {
			continue // already out of service
		}
		lane := e.sorter.Lane(i)
		if rep := lane.Audit(); rep.Err() == nil {
			continue
		}
		out := e.sup.Repair(i, func(int) error {
			if err := lane.Rebuild(); err != nil {
				return err
			}
			if rep := lane.Audit(); rep.Err() != nil {
				return rep.Err()
			}
			return nil
		})
		if out.Quarantined {
			e.quarantineLane(i)
		}
	}
	e.sorter.ResyncHeads()
	if e.healthyLanes() == 0 {
		return errors.New("all lanes quarantined, nothing can serve")
	}
	return e.reconcileSlots()
}

// quarantineLane takes lane i out of service: its surviving entries are
// evacuated onto healthy lanes under the remap (degraded order beats
// lost packets), the lane is flushed, and the quarantine flag makes
// Submit and drainRings route its tag slice elsewhere until a reinstate
// probe succeeds. Unreadable or unplaceable entries are left for the
// slot reconciliation to count as FaultLost.
func (e *Engine) quarantineLane(i int) {
	e.quar[i].Store(true)
	lane := e.sorter.Lane(i)
	snap, err := lane.Snapshot()
	lane.Flush()
	if err != nil {
		snap = nil
	}
	moved := 0
	for _, en := range snap {
		if en.Tag < 0 || en.Tag >= e.sorter.TagRange() {
			continue // corrupt tag: unplaceable, reconciled as lost
		}
		eff, ok := e.remapTag(en.Tag)
		if !ok {
			break
		}
		if e.sorter.Insert(eff, en.Payload) != nil {
			continue // destination full or rejected: reconciled as lost
		}
		moved++
	}
	if moved > 0 {
		e.evacuated.Add(uint64(moved))
	}
}

// probeLane answers a supervisor reinstate offer: rebuild and audit the
// (flushed, empty) quarantined lane; a clean result returns it to
// service, a dirty one re-quarantines it with a doubled probe delay.
func (e *Engine) probeLane(i int) {
	lane := e.sorter.Lane(i)
	err := lane.Rebuild()
	if err == nil {
		if rep := lane.Audit(); rep.Err() != nil {
			err = rep.Err()
		}
	}
	if err != nil {
		e.sup.Requarantine(i)
		return
	}
	e.sorter.ResyncHeads()
	e.quar[i].Store(false)
	e.sup.Reinstate(i)
}

// healthyLanes counts lanes not under quarantine.
func (e *Engine) healthyLanes() int {
	n := 0
	for i := range e.quar {
		if !e.quar[i].Load() {
			n++
		}
	}
	return n
}

// reconcileSlots rebuilds the slot free list from the sorter's surviving
// entries: slots no longer referenced by any live entry are freed and
// counted in FaultLost, closing the conservation invariant after a
// recovery.
func (e *Engine) reconcileSlots() error {
	snap, err := e.sorter.Snapshot()
	if err != nil {
		return fmt.Errorf("engine: reconcile: %w", err)
	}
	liveNow := make(map[int]bool, len(snap))
	for _, entry := range snap {
		liveNow[entry.Payload] = true
	}
	lost := 0
	for idx := range e.slots {
		if e.slots[idx].live && !liveNow[idx] {
			e.slots[idx] = slot{}
			e.free = append(e.free, idx)
			lost++
		}
	}
	if lost > 0 {
		e.faultLost.Add(uint64(lost))
		e.redDepart(lost)
	}
	return nil
}

// sweepOrphanSlots frees every still-live slot and counts it in
// FaultLost. Only valid when the sorter is known empty (end of drain):
// at that point a live slot can only be the leftover of a ghost
// extraction whose duplicate payload reference released someone else's
// slot.
func (e *Engine) sweepOrphanSlots() {
	lost := 0
	for idx := range e.slots {
		if e.slots[idx].live {
			e.slots[idx] = slot{}
			e.free = append(e.free, idx)
			lost++
		}
	}
	if lost > 0 {
		e.faultLost.Add(uint64(lost))
		e.redDepart(lost)
	}
}

// drainAborted reports whether the drain watchdog has fired.
func (e *Engine) drainAborted() bool {
	select {
	case <-e.abortDrain:
		return true
	default:
		return false
	}
}

// finalizeAbort closes out an aborted drain: every packet still in
// flight is shed accountably — ring and carry items are counted
// inserted-then-lost (so Submitted == Inserted survives), the lanes are
// flushed, and the slot reconciliation counts the sorter residents —
// then the datapath exits with a drain-aborted terminal error.
func (e *Engine) finalizeAbort() {
	shed := uint64(len(e.carry))
	e.carry = nil
	for _, ring := range e.rings {
		for {
			drained := false
			select {
			case <-ring:
				shed++
				drained = true
			default:
			}
			if !drained {
				break
			}
		}
	}
	if shed > 0 {
		e.inserted.Add(shed)
		e.faultLost.Add(shed)
		e.drainShed.Add(shed)
		e.redDepart(int(shed))
	}
	flushed := 0
	for i := 0; i < e.sorter.Lanes(); i++ {
		flushed += e.sorter.Lane(i).Flush()
	}
	e.sorter.ResyncHeads()
	if err := e.reconcileSlots(); err != nil {
		// The slot table could not be reconciled against the flushed
		// sorter; surface it, the shed counters still hold.
		e.runErr = fmt.Errorf("engine: drain aborted and reconcile failed: %w", err)
		e.updateMirror()
		return
	}
	e.drainShed.Add(uint64(flushed))
	e.updateMirror()
	e.runErr = fmt.Errorf("engine: drain aborted by watchdog after %v without progress: %d packets shed (accounted in FaultLost)",
		e.cfg.DrainTimeout, e.drainShed.Load())
}

// watchdog monitors datapath progress from outside the datapath
// goroutine: a wedged drain is aborted after DrainTimeout, and a
// stalled datapath (no progress with work pending) is flagged in the
// supervision state machine after StallTimeout until progress resumes.
func (e *Engine) watchdog() {
	tick := e.watchTick()
	if tick <= 0 {
		return
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var last uint64
	var stalledFor time.Duration
	wasStalled := false
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
		}
		p := e.progress.Load()
		draining := e.draining.Load()
		pending := draining || e.ringsOccupied() > 0 || e.mirrorSorterLen() > 0
		if p != last || !pending {
			last = p
			stalledFor = 0
			if wasStalled {
				wasStalled = false
				e.sup.SetStalled(false)
			}
			continue
		}
		stalledFor += tick
		if draining {
			if e.cfg.DrainTimeout > 0 && stalledFor >= e.cfg.DrainTimeout {
				e.watchdogTrips.Add(1)
				e.abortOnce.Do(func() { close(e.abortDrain) })
			}
			continue
		}
		if e.cfg.StallTimeout > 0 && stalledFor >= e.cfg.StallTimeout && !wasStalled {
			e.watchdogTrips.Add(1)
			wasStalled = true
			e.sup.SetStalled(true)
		}
	}
}

// watchTick derives the watchdog polling period from the enabled
// deadlines (an eighth of the tightest one, clamped to [1ms, 250ms]);
// zero means both deadlines are disabled and no watchdog is needed.
func (e *Engine) watchTick() time.Duration {
	min := time.Duration(0)
	for _, d := range []time.Duration{e.cfg.DrainTimeout, e.cfg.StallTimeout} {
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	if min == 0 {
		return 0
	}
	tick := min / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	return tick
}

// allocSlot assigns a slot to a submission (datapath-owned).
func (e *Engine) allocSlot(it item) (int, bool) {
	if len(e.free) == 0 {
		return 0, false
	}
	idx := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.slots[idx] = slot{tag: it.tag, payload: it.payload, submitNs: it.submitNs, live: true}
	return idx, true
}

// releaseSlot frees a slot on extraction, returning its record.
func (e *Engine) releaseSlot(idx int) slot {
	if idx < 0 || idx >= len(e.slots) || !e.slots[idx].live {
		// A recovery already reclaimed it (or the payload is damaged);
		// serve what we can.
		return slot{}
	}
	sl := e.slots[idx]
	e.slots[idx] = slot{}
	e.free = append(e.free, idx)
	return sl
}

// ringsEmpty reports whether every submission ring is drained.
func (e *Engine) ringsEmpty() bool {
	for _, r := range e.rings {
		if len(r) > 0 {
			return false
		}
	}
	return true
}

// ringsOccupied returns the total ring occupancy (safe from any
// goroutine).
func (e *Engine) ringsOccupied() int {
	n := 0
	for _, r := range e.rings {
		n += len(r)
	}
	return n
}

// mirrorSorterLen reads the mirrored sorter occupancy gauge.
func (e *Engine) mirrorSorterLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mirror.sorterLen
}

// recordLatency appends one sample to the sliding window.
func (e *Engine) recordLatency(ns int64) {
	e.mu.Lock()
	if len(e.latBuf) < latencyWindow {
		e.latBuf = append(e.latBuf, ns)
	} else {
		e.latBuf[e.latPos] = ns
		e.latPos = (e.latPos + 1) % latencyWindow
	}
	e.latN++
	e.mu.Unlock()
}

// updateMirror copies datapath-owned gauges into the snapshot mirror.
func (e *Engine) updateMirror() {
	st := e.sorter.StatsSnapshot()
	m := mirror{
		laneLens:     st.LaneLens,
		sorterLen:    e.sorter.Len(),
		maxCycles:    st.MaxLaneCycles,
		sumCycles:    st.SumLaneCycles,
		modelSpeedup: st.ModelSpeedup(),
		laneLoad:     metrics.LaneLoad(st.LaneInserts),
		fabric:       make([]LaneFabricStats, e.sorter.Lanes()),
	}
	for i := range m.fabric {
		m.fabric[i] = LaneFabricStats{
			Lane:    i,
			Regions: metrics.FabricPressure(e.sorter.LaneFabric(i)),
		}
	}
	e.mu.Lock()
	e.mirror = m
	e.mu.Unlock()
}

// healthState places the engine on its state machine (DESIGN.md §12):
// stopped → healthy ⇄ {degraded, stalled} → draining → stopped/failed.
func (e *Engine) healthState() string {
	switch {
	case !e.started.Load():
		return "stopped"
	case e.stopped():
		// runErr is written by the datapath before done closes, so this
		// read is ordered after the write.
		if e.runErr != nil {
			return "failed"
		}
		return "stopped"
	case e.stopping.Load():
		return "draining"
	default:
		return e.sup.EngineState().String()
	}
}

// Ready reports readiness: the engine is running and fully healthy (no
// quarantined or rebuilding lane, no stall, not draining). A degraded
// engine still serves — liveness holds — but reports not-ready so load
// balancers steer new work away while it recovers.
func (e *Engine) Ready() bool { return e.healthState() == "healthy" }

// StatsSnapshot returns the engine counters and gauges. Safe to call
// from any goroutine at any time; gauges may trail the datapath by a few
// batches.
func (e *Engine) StatsSnapshot() Stats {
	st := Stats{
		Running:        e.started.Load() && !e.stopped(),
		Lanes:          e.cfg.Lanes,
		Policy:         e.cfg.Policy.String(),
		Health:         e.healthState(),
		Submitted:      e.submitted.Load(),
		DropsRing:      e.dropsRing.Load(),
		DropsRED:       e.dropsRED.Load(),
		Inserted:       e.inserted.Load(),
		Extracted:      e.extracted.Load(),
		FaultLost:      e.faultLost.Load(),
		Batches:        e.batches.Load(),
		BatchedOps:     e.batchedOps.Load(),
		MaxBatch:       int(e.maxBatch.Load()),
		Recoveries:     e.recoveries.Load(),
		DatapathIdles:  e.idles.Load(),
		Remapped:       e.remapped.Load(),
		Evacuated:      e.evacuated.Load(),
		DrainShed:      e.drainShed.Load(),
		GhostDrops:     e.ghostDrops.Load(),
		WatchdogTrips:  e.watchdogTrips.Load(),
		DatapathPanics: e.panics.Load(),
		Supervision:    e.sup.StatsSnapshot(),
		RingLens:       make([]int, len(e.rings)),
		WindowCycles:   e.sorter.Lane(0).CyclesPerWindow(),
	}
	st.Ready = st.Health == "healthy"
	for i, r := range e.rings {
		st.RingLens[i] = len(r)
		st.RingOccupied += len(r)
	}
	e.mu.Lock()
	st.LaneLens = append([]int(nil), e.mirror.laneLens...)
	st.SorterLen = e.mirror.sorterLen
	st.MaxLaneCycles = e.mirror.maxCycles
	st.SumLaneCycles = e.mirror.sumCycles
	st.ModelSpeedup = e.mirror.modelSpeedup
	st.LaneLoad = e.mirror.laneLoad
	st.FabricLanes = append([]LaneFabricStats(nil), e.mirror.fabric...)
	st.LatencyCount = e.latN
	if n := len(e.latBuf); n > 0 {
		s := make([]int64, n)
		copy(s, e.latBuf)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		sum := int64(0)
		for _, v := range s {
			sum += v
		}
		st.LatencyMeanNs = float64(sum) / float64(n)
		st.LatencyP99Ns = float64(s[n*99/100])
		st.LatencyMaxNs = float64(s[n-1])
	}
	e.mu.Unlock()
	st.InFlight = st.RingOccupied + st.SorterLen
	if st.ModelSpeedup > 0 && st.WindowCycles > 0 {
		st.ModeledMpps = e.cfg.ClockHz / float64(st.WindowCycles) * st.ModelSpeedup / 1e6
	}
	return st
}

// Stats returns the counter snapshot.
//
// Deprecated: use StatsSnapshot (the repository-wide stats accessor
// convention, DESIGN.md §11).
func (e *Engine) Stats() Stats { return e.StatsSnapshot() }

// stopped reports whether the datapath has exited.
func (e *Engine) stopped() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}
