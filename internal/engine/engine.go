// Package engine is the line-rate serving runtime on top of the sharded
// sort/retrieve circuit: the layer that turns the cycle-accurate model
// into a long-running concurrent service with admission backpressure and
// live observability (the wfqd daemon and sortbench -engine both drive
// it).
//
// The shape follows the software packet-scheduling literature. Eiffel
// (Saeed et al., NSDI'19) shows that software schedulers reach line rate
// by amortizing per-packet costs over bucketed queue operations; here N
// producers submit into per-lane bounded rings and a single datapath
// goroutine drains them in batches through ShardedSorter.InsertBatch, so
// the per-packet synchronization cost is one ring operation and the
// sorter cost is amortized over the batch. The PIFO line of work
// (Sivaraman et al.) frames the serving loop itself: admit with a
// computed rank, extract the minimum, repeat — the engine's extractor is
// exactly that loop, honoring the paper's fixed operation window on
// every lane.
//
// Concurrency contract: producers call Submit from any goroutine; the
// sorter is owned by one datapath goroutine (the modelled hardware is a
// synchronous pipeline, so all sorter operations serialize through it);
// consumers receive Served records from the Served channel and MUST keep
// receiving until it closes, or the bounded channel backpressures the
// datapath (by design: an unread output queue is a full output queue).
//
// Fault containment: with RecoverFaults set, a corrupt-state error from
// the sorter (or a datapath panic) triggers the PR-1 recovery machinery
// — per-lane Audit/Rebuild from the authoritative tag store, select-tree
// ResyncHeads, and a slot-table reconciliation that counts anything
// unrecoverable in Stats.FaultLost — instead of killing the engine. The
// accounting invariant Inserted == Extracted + FaultLost + in-sorter
// holds across recoveries, so no packet is ever lost unaccounted.
//
//wfqlint:ignore-file determinism the serving engine is intentionally wall-clock code: it measures real enqueue-to-extract latency and real throughput, not simulated time (DESIGN.md §11)
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wfqsort/internal/aqm"
	"wfqsort/internal/hwsim"
	"wfqsort/internal/membus"
	"wfqsort/internal/metrics"
	"wfqsort/internal/sharded"
	"wfqsort/internal/taglist"
)

// Sentinel errors returned by Engine operations.
var (
	// ErrNotStarted is returned by Submit/Stop before Start.
	ErrNotStarted = errors.New("engine: not started")
	// ErrStopped is returned by Submit once shutdown has begun (or the
	// datapath died on an unrecoverable error).
	ErrStopped = errors.New("engine: stopped")
)

// Policy selects the ingestion backpressure behaviour when a submission
// ring is full (the engine-level analogue of scheduler.FullPolicy).
type Policy int

const (
	// PolicyBlock makes Submit wait for ring space: backpressure
	// propagates to the producer, nothing is dropped. The default.
	PolicyBlock Policy = iota + 1
	// PolicyDropTail drops the submission when its lane ring is full,
	// counting it in Stats.DropsRing (classic tail drop).
	PolicyDropTail
	// PolicyRED applies random early detection (internal/aqm) on the
	// engine occupancy before ring admission: drops begin
	// probabilistically before the rings fill, counted in Stats.DropsRED.
	// A submission RED admits still blocks for ring space (an admitted
	// packet is never silently lost).
	PolicyRED
)

func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropTail:
		return "drop-tail"
	case PolicyRED:
		return "red"
	default:
		return "unknown"
	}
}

// Config describes an engine. The zero value of every field selects a
// documented default, so Config{} is a valid 4-lane engine.
type Config struct {
	// Lanes is the sharded sorter's lane count (power of two, 1..64).
	// Default 4.
	Lanes int
	// LaneCapacity is the number of tag-store links per lane.
	// Default 1024.
	LaneCapacity int
	// Partition is the tag-space split (default interleaved).
	Partition sharded.Partition
	// MemTech is each lane's tag-store memory technology (default SDR).
	MemTech taglist.MemTech
	// LaneFabrics, when non-nil, supplies one pre-built memory fabric
	// per lane (len == Lanes), e.g. to attach a fault campaign. Attach
	// observers before Start: the datapath owns the fabrics afterwards.
	LaneFabrics []*membus.Fabric
	// RingSize is the per-lane submission ring depth. Default 256.
	RingSize int
	// BatchSize caps how many submissions one drain pass moves from each
	// lane ring into an InsertBatch, and how many entries one extractor
	// pass serves. Default 64.
	BatchSize int
	// Policy is the ring-full backpressure policy (default PolicyBlock).
	Policy Policy
	// RED configures early detection when Policy is PolicyRED; the zero
	// value selects thresholds at 1/4 and 3/4 of the total in-flight
	// capacity (rings + sorter) with maxP 0.05.
	RED aqm.REDConfig
	// OutBuffer is the Served channel depth. Default 1024.
	OutBuffer int
	// RecoverFaults enables the fault containment path: corrupt-state
	// errors trigger per-lane Audit/Rebuild and slot reconciliation
	// instead of stopping the engine.
	RecoverFaults bool
	// ClockHz is the modelled circuit clock used to report modelled
	// packet rates next to wall-clock ones. Defaults to the paper's
	// 143.2 MHz.
	ClockHz float64
}

// Validate checks the configuration and normalizes documented zero-value
// defaults in place. New calls it; callers only need it to pre-validate.
func (c *Config) Validate() error {
	if c.Lanes == 0 {
		c.Lanes = 4
	}
	if c.Lanes < 1 || c.Lanes > 64 || c.Lanes&(c.Lanes-1) != 0 {
		return fmt.Errorf("engine: lanes %d must be a power of two in 1..64", c.Lanes)
	}
	if c.LaneCapacity == 0 {
		c.LaneCapacity = 1024
	}
	if c.LaneCapacity < 2 {
		return fmt.Errorf("engine: lane capacity %d must be at least 2", c.LaneCapacity)
	}
	if c.RingSize == 0 {
		c.RingSize = 256
	}
	if c.RingSize < 1 {
		return fmt.Errorf("engine: ring size %d must be positive", c.RingSize)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("engine: batch size %d must be positive", c.BatchSize)
	}
	if c.Policy == 0 {
		c.Policy = PolicyBlock
	}
	if c.Policy != PolicyBlock && c.Policy != PolicyDropTail && c.Policy != PolicyRED {
		return fmt.Errorf("engine: unknown backpressure policy %d", int(c.Policy))
	}
	if c.OutBuffer == 0 {
		c.OutBuffer = 1024
	}
	if c.OutBuffer < 1 {
		return fmt.Errorf("engine: out buffer %d must be positive", c.OutBuffer)
	}
	if c.ClockHz == 0 {
		c.ClockHz = 143.2e6
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("engine: clock %v must be positive", c.ClockHz)
	}
	if c.Policy == PolicyRED && c.RED.MinThreshold == 0 && c.RED.MaxThreshold == 0 {
		inflight := float64(c.Lanes * (c.LaneCapacity + c.RingSize))
		c.RED = aqm.REDConfig{
			MinThreshold: inflight / 4,
			MaxThreshold: inflight * 3 / 4,
			MaxP:         0.05,
		}
	}
	return nil
}

// Served is one extracted entry delivered to the consumer.
type Served struct {
	// Tag is the finishing tag that was served.
	Tag int
	// Payload is the value passed to Submit.
	Payload int
	// Latency is the wall-clock enqueue-to-extract time.
	Latency time.Duration
}

// Stats is the engine's counter snapshot, following the repository's
// StatsSnapshot() convention (DESIGN.md §11). Counters are cumulative
// since Start; gauges reflect the datapath's most recent mirror update
// (at most a few batches stale).
type Stats struct {
	Running bool
	Lanes   int
	Policy  string

	// Ingest accounting. Offered = Submitted + DropsRing + DropsRED.
	Submitted uint64
	DropsRing uint64
	DropsRED  uint64

	// Datapath accounting. The conservation invariant is
	// Inserted == Extracted + FaultLost + SorterLen.
	Inserted  uint64
	Extracted uint64
	FaultLost uint64

	// Batching effectiveness of the drain loop.
	Batches       uint64
	BatchedOps    uint64
	MaxBatch      int
	Recoveries    uint64
	DatapathIdles uint64

	// Occupancy gauges.
	RingLens  []int
	LaneLens  []int
	SorterLen int
	InFlight  int

	// Enqueue-to-extract wall-clock latency over (up to) the most recent
	// latencyWindow extractions.
	LatencyCount  uint64
	LatencyMeanNs float64
	LatencyP99Ns  float64
	LatencyMaxNs  float64

	// Modelled-hardware view: the sharded cycle accounting underneath
	// the wall-clock numbers (DESIGN.md §11 relates the two).
	WindowCycles  int
	MaxLaneCycles uint64
	SumLaneCycles uint64
	ModelSpeedup  float64
	ModeledMpps   float64

	// Lane balance and per-lane fabric port pressure, for /metrics.
	LaneLoad     metrics.LaneStats
	FabricLanes  []LaneFabricStats
	RingOccupied int
}

// LaneFabricStats is one lane's memory-fabric pressure snapshot.
type LaneFabricStats struct {
	Lane    int
	Regions []metrics.PortPressure
}

// item is one submission in flight through a lane ring.
type item struct {
	tag      int
	payload  int
	submitNs int64
}

// slot is one entry of the payload indirection table: the sorter stores
// the slot index, the slot remembers the caller's payload and the
// submission timestamp.
type slot struct {
	payload  int
	submitNs int64
	live     bool
}

// latencyWindow is the sliding sample window for latency percentiles.
const latencyWindow = 8192

// Engine is the concurrent serving runtime. Build with New, Start it,
// Submit from any number of goroutines, consume Served until it closes,
// Stop to drain gracefully.
type Engine struct {
	cfg    Config
	sorter *sharded.ShardedSorter

	rings    []chan item
	notify   chan struct{}
	drainReq chan struct{}
	done     chan struct{}
	out      chan Served

	red   *aqm.RED
	redMu sync.Mutex

	// Slot table: owned by the datapath goroutine.
	slots []slot
	free  []int

	started  atomic.Bool
	stopping atomic.Bool
	subWG    sync.WaitGroup
	stopOnce sync.Once
	runErr   error

	submitted  atomic.Uint64
	dropsRing  atomic.Uint64
	dropsRED   atomic.Uint64
	inserted   atomic.Uint64
	extracted  atomic.Uint64
	faultLost  atomic.Uint64
	batches    atomic.Uint64
	batchedOps atomic.Uint64
	maxBatch   atomic.Int64
	recoveries atomic.Uint64
	idles      atomic.Uint64

	mu     sync.Mutex // guards mirror + latency reservoir
	mirror mirror
	latBuf []int64 // circular latency sample window
	latPos int
	latN   uint64
}

// mirror holds the gauges the datapath periodically copies out of the
// sorter so StatsSnapshot never touches datapath-owned state.
type mirror struct {
	laneLens     []int
	sorterLen    int
	maxCycles    uint64
	sumCycles    uint64
	modelSpeedup float64
	laneLoad     metrics.LaneStats
	fabric       []LaneFabricStats
}

// New builds an engine. The configuration is validated and defaulted via
// Config.Validate.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := sharded.New(sharded.Config{
		Lanes:        cfg.Lanes,
		LaneCapacity: cfg.LaneCapacity,
		Partition:    cfg.Partition,
		MemTech:      cfg.MemTech,
		LaneFabrics:  cfg.LaneFabrics,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		cfg:      cfg,
		sorter:   s,
		rings:    make([]chan item, cfg.Lanes),
		notify:   make(chan struct{}, 1),
		drainReq: make(chan struct{}),
		done:     make(chan struct{}),
		out:      make(chan Served, cfg.OutBuffer),
		slots:    make([]slot, s.Capacity()),
		free:     make([]int, 0, s.Capacity()),
		latBuf:   make([]int64, 0, latencyWindow),
	}
	for i := range e.rings {
		e.rings[i] = make(chan item, cfg.RingSize)
	}
	for i := s.Capacity() - 1; i >= 0; i-- {
		e.free = append(e.free, i)
	}
	if cfg.Policy == PolicyRED {
		red, err := aqm.NewRED(cfg.RED)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.red = red
	}
	return e, nil
}

// Lanes returns the lane count.
func (e *Engine) Lanes() int { return e.sorter.Lanes() }

// TagRange returns the number of representable tag values.
func (e *Engine) TagRange() int { return e.sorter.TagRange() }

// Capacity returns the total sorter links across lanes (the in-sorter
// occupancy ceiling; rings add Lanes×RingSize on top).
func (e *Engine) Capacity() int { return e.sorter.Capacity() }

// Served returns the consumer channel. It is closed after a graceful
// drain completes (or the datapath dies); consumers must keep receiving
// until then.
func (e *Engine) Served() <-chan Served { return e.out }

// Start spawns the datapath goroutine. It may be called once.
func (e *Engine) Start() error {
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("engine: already started")
	}
	go e.run()
	return nil
}

// Submit offers one (tag, payload) to the engine from any goroutine. It
// reports whether the submission was admitted: under PolicyDropTail and
// PolicyRED an overloaded engine sheds load by returning (false, nil)
// and counting the drop; under PolicyBlock it waits for ring space. The
// error is non-nil only for invalid tags or a stopped engine.
func (e *Engine) Submit(tag, payload int) (admitted bool, err error) {
	if !e.started.Load() {
		return false, ErrNotStarted
	}
	if e.stopping.Load() {
		return false, ErrStopped
	}
	e.subWG.Add(1)
	defer e.subWG.Done()
	// Re-check after registering with the in-flight group: Stop waits on
	// the group after setting the flag, so a Submit that observes
	// stopping false here is guaranteed to finish before the drain scan.
	if e.stopping.Load() {
		return false, ErrStopped
	}
	if tag < 0 || tag >= e.sorter.TagRange() {
		return false, fmt.Errorf("engine: tag %d outside [0,%d)", tag, e.sorter.TagRange())
	}
	it := item{tag: tag, payload: payload, submitNs: time.Now().UnixNano()}
	ring := e.rings[e.sorter.LaneFor(tag)]
	switch e.cfg.Policy {
	case PolicyDropTail:
		select {
		case ring <- it:
		default:
			e.dropsRing.Add(1)
			return false, nil
		}
	case PolicyRED:
		e.redMu.Lock()
		ok := e.red.Arrive()
		e.redMu.Unlock()
		if !ok {
			e.dropsRED.Add(1)
			return false, nil
		}
		select {
		case ring <- it:
		case <-e.done:
			e.redDepart(1)
			return false, ErrStopped
		}
	default: // PolicyBlock
		select {
		case ring <- it:
		case <-e.done:
			return false, ErrStopped
		}
	}
	e.submitted.Add(1)
	select {
	case e.notify <- struct{}{}:
	default:
	}
	return true, nil
}

// Stop begins a graceful shutdown: new submissions are rejected with
// ErrStopped, in-flight ones complete, the rings are drained through the
// sorter, every queued entry is extracted and delivered, and the Served
// channel is closed. It returns the datapath's terminal error, if any
// (nil after a clean drain), and is safe to call more than once.
func (e *Engine) Stop() error {
	if !e.started.Load() {
		return ErrNotStarted
	}
	e.stopOnce.Do(func() {
		e.stopping.Store(true)
		e.subWG.Wait()
		close(e.drainReq)
	})
	<-e.done
	return e.runErr
}

// redDepart updates the RED occupancy estimate for n departures.
func (e *Engine) redDepart(n int) {
	if e.red == nil {
		return
	}
	e.redMu.Lock()
	for i := 0; i < n; i++ {
		e.red.Depart()
	}
	e.redMu.Unlock()
}

// run is the datapath goroutine: the only goroutine that touches the
// sorter, the slot table, and the Served channel sender side.
func (e *Engine) run() {
	defer close(e.done)
	defer close(e.out)
	defer func() {
		if r := recover(); r != nil {
			// Panic containment: a datapath panic becomes a terminal
			// error after a best-effort audit/repair pass, so producers
			// and consumers unblock instead of deadlocking on a dead
			// goroutine.
			err := fmt.Errorf("engine: datapath panic: %v", r)
			if e.cfg.RecoverFaults {
				if rerr := e.repair(); rerr == nil {
					err = fmt.Errorf("engine: datapath panic (state repaired, engine stopped): %v", r)
				}
			}
			e.runErr = err
		}
	}()

	const mirrorEvery = 8
	sinceMirror := mirrorEvery // force a mirror on the first pass
	draining := false
	for {
		worked := false
		if n, err := e.drainRings(); err != nil {
			e.runErr = err
			return
		} else if n > 0 {
			worked = true
		}
		if n, err := e.serve(); err != nil {
			e.runErr = err
			return
		} else if n > 0 {
			worked = true
		}
		if sinceMirror++; worked && sinceMirror >= mirrorEvery {
			e.updateMirror()
			sinceMirror = 0
		}
		if worked {
			if !draining {
				select {
				case <-e.drainReq:
					draining = true
				default:
				}
			}
			continue
		}
		if draining && e.ringsEmpty() && e.sorter.Len() == 0 {
			e.updateMirror()
			return
		}
		e.idles.Add(1)
		e.updateMirror()
		sinceMirror = 0
		if draining {
			// Rings and sorter can only be non-empty here transiently
			// (lane-full backoff); yield and rescan.
			continue
		}
		select {
		case <-e.notify:
		case <-e.drainReq:
			draining = true
		}
	}
}

// drainRings moves up to BatchSize submissions per lane from the rings
// into one amortized InsertBatch, bounded by each lane's free links so a
// full lane backpressures its ring instead of failing the batch.
func (e *Engine) drainRings() (int, error) {
	reqs := make([]sharded.Request, 0, e.cfg.BatchSize*len(e.rings))
	for lane, ring := range e.rings {
		budget := e.cfg.BatchSize
		if free := e.cfg.LaneCapacity - e.sorter.Lane(lane).Len(); free < budget {
			budget = free
		}
		for n := 0; n < budget; n++ {
			select {
			case it := <-ring:
				idx, ok := e.allocSlot(it)
				if !ok {
					// Capacity exhausted (only possible after fault losses
					// outran reconciliation); shed accountably.
					e.faultLost.Add(1)
					e.inserted.Add(1)
					e.redDepart(1)
					continue
				}
				reqs = append(reqs, sharded.Request{Tag: it.tag, Payload: idx})
			default:
				n = budget
			}
		}
	}
	if len(reqs) == 0 {
		return 0, nil
	}
	lenBefore := e.sorter.Len()
	_, err := e.sorter.InsertBatch(reqs)
	if err != nil {
		if rerr := e.containFault("insert-batch", err); rerr != nil {
			return 0, rerr
		}
		// Whatever the recovery could not preserve was counted by the
		// slot reconciliation; the batch itself is accounted below.
		e.inserted.Add(uint64(len(reqs)))
		e.settleLostBatch(lenBefore, len(reqs))
		return len(reqs), nil
	}
	e.inserted.Add(uint64(len(reqs)))
	e.batches.Add(1)
	e.batchedOps.Add(uint64(len(reqs)))
	if m := int64(len(reqs)); m > e.maxBatch.Load() {
		e.maxBatch.Store(m)
	}
	return len(reqs), nil
}

// settleLostBatch closes the accounting of a batch interrupted by a
// recovery: entries that did not survive into the sorter are already
// slot-reconciled; here the conservation counters absorb the difference
// between what the batch attempted and what the sorter holds.
func (e *Engine) settleLostBatch(lenBefore, attempted int) {
	landed := e.sorter.Len() - lenBefore
	if landed < 0 {
		landed = 0
	}
	if lost := attempted - landed; lost > 0 {
		e.redDepart(lost)
	}
	e.batches.Add(1)
	e.batchedOps.Add(uint64(attempted))
}

// serve extracts up to BatchSize entries, delivering each to the Served
// channel (blocking there is the consumer-side backpressure).
func (e *Engine) serve() (int, error) {
	served := 0
	for served < e.cfg.BatchSize && e.sorter.Len() > 0 {
		entry, err := e.sorter.ExtractMin()
		if err != nil {
			if errors.Is(err, taglist.ErrEmpty) {
				break
			}
			if rerr := e.containFault("extract", err); rerr != nil {
				return served, rerr
			}
			continue // retry against the rebuilt state
		}
		now := time.Now().UnixNano()
		sl := e.releaseSlot(entry.Payload)
		lat := time.Duration(0)
		if sl.live {
			lat = time.Duration(now - sl.submitNs)
		}
		e.recordLatency(int64(lat))
		e.extracted.Add(1)
		e.redDepart(1)
		e.out <- Served{Tag: entry.Tag, Payload: sl.payload, Latency: lat}
		served++
	}
	return served, nil
}

// containFault applies the recovery policy to a datapath error. A nil
// return means the engine repaired its state and the caller may retry;
// non-nil is terminal.
func (e *Engine) containFault(op string, err error) error {
	if !e.cfg.RecoverFaults || !errors.Is(err, hwsim.ErrCorrupt) {
		return fmt.Errorf("engine: %s: %w", op, err)
	}
	if rerr := e.repair(); rerr != nil {
		return fmt.Errorf("engine: %s: %w (repair failed: %v)", op, err, rerr)
	}
	e.recoveries.Add(1)
	return nil
}

// repair is the PR-1 recovery machinery applied across lanes: audit each
// lane, rebuild the damaged ones from their authoritative tag stores,
// resynchronize the select tree, then reconcile the slot table against
// the surviving entries so every unrecoverable packet is counted.
func (e *Engine) repair() error {
	for i := 0; i < e.sorter.Lanes(); i++ {
		lane := e.sorter.Lane(i)
		if rep := lane.Audit(); rep.Err() == nil {
			continue
		}
		if err := lane.Rebuild(); err != nil {
			return fmt.Errorf("engine: lane %d rebuild: %w", i, err)
		}
	}
	e.sorter.ResyncHeads()
	return e.reconcileSlots()
}

// reconcileSlots rebuilds the slot free list from the sorter's surviving
// entries: slots no longer referenced by any live entry are freed and
// counted in FaultLost, closing the conservation invariant after a
// recovery.
func (e *Engine) reconcileSlots() error {
	snap, err := e.sorter.Snapshot()
	if err != nil {
		return fmt.Errorf("engine: reconcile: %w", err)
	}
	liveNow := make(map[int]bool, len(snap))
	for _, entry := range snap {
		liveNow[entry.Payload] = true
	}
	lost := 0
	for idx := range e.slots {
		if e.slots[idx].live && !liveNow[idx] {
			e.slots[idx] = slot{}
			e.free = append(e.free, idx)
			lost++
		}
	}
	if lost > 0 {
		e.faultLost.Add(uint64(lost))
	}
	return nil
}

// allocSlot assigns a slot to a submission (datapath-owned).
func (e *Engine) allocSlot(it item) (int, bool) {
	if len(e.free) == 0 {
		return 0, false
	}
	idx := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	e.slots[idx] = slot{payload: it.payload, submitNs: it.submitNs, live: true}
	return idx, true
}

// releaseSlot frees a slot on extraction, returning its record.
func (e *Engine) releaseSlot(idx int) slot {
	if idx < 0 || idx >= len(e.slots) || !e.slots[idx].live {
		// A recovery already reclaimed it (or the payload is damaged);
		// serve what we can.
		return slot{}
	}
	sl := e.slots[idx]
	e.slots[idx] = slot{}
	e.free = append(e.free, idx)
	return sl
}

// ringsEmpty reports whether every submission ring is drained.
func (e *Engine) ringsEmpty() bool {
	for _, r := range e.rings {
		if len(r) > 0 {
			return false
		}
	}
	return true
}

// recordLatency appends one sample to the sliding window.
func (e *Engine) recordLatency(ns int64) {
	e.mu.Lock()
	if len(e.latBuf) < latencyWindow {
		e.latBuf = append(e.latBuf, ns)
	} else {
		e.latBuf[e.latPos] = ns
		e.latPos = (e.latPos + 1) % latencyWindow
	}
	e.latN++
	e.mu.Unlock()
}

// updateMirror copies datapath-owned gauges into the snapshot mirror.
func (e *Engine) updateMirror() {
	st := e.sorter.StatsSnapshot()
	m := mirror{
		laneLens:     st.LaneLens,
		sorterLen:    e.sorter.Len(),
		maxCycles:    st.MaxLaneCycles,
		sumCycles:    st.SumLaneCycles,
		modelSpeedup: st.ModelSpeedup(),
		laneLoad:     metrics.LaneLoad(st.LaneInserts),
		fabric:       make([]LaneFabricStats, e.sorter.Lanes()),
	}
	for i := range m.fabric {
		m.fabric[i] = LaneFabricStats{
			Lane:    i,
			Regions: metrics.FabricPressure(e.sorter.LaneFabric(i)),
		}
	}
	e.mu.Lock()
	e.mirror = m
	e.mu.Unlock()
}

// StatsSnapshot returns the engine counters and gauges. Safe to call
// from any goroutine at any time; gauges may trail the datapath by a few
// batches.
func (e *Engine) StatsSnapshot() Stats {
	st := Stats{
		Running:       e.started.Load() && !e.stopped(),
		Lanes:         e.cfg.Lanes,
		Policy:        e.cfg.Policy.String(),
		Submitted:     e.submitted.Load(),
		DropsRing:     e.dropsRing.Load(),
		DropsRED:      e.dropsRED.Load(),
		Inserted:      e.inserted.Load(),
		Extracted:     e.extracted.Load(),
		FaultLost:     e.faultLost.Load(),
		Batches:       e.batches.Load(),
		BatchedOps:    e.batchedOps.Load(),
		MaxBatch:      int(e.maxBatch.Load()),
		Recoveries:    e.recoveries.Load(),
		DatapathIdles: e.idles.Load(),
		RingLens:      make([]int, len(e.rings)),
		WindowCycles:  e.sorter.Lane(0).CyclesPerWindow(),
	}
	for i, r := range e.rings {
		st.RingLens[i] = len(r)
		st.RingOccupied += len(r)
	}
	e.mu.Lock()
	st.LaneLens = append([]int(nil), e.mirror.laneLens...)
	st.SorterLen = e.mirror.sorterLen
	st.MaxLaneCycles = e.mirror.maxCycles
	st.SumLaneCycles = e.mirror.sumCycles
	st.ModelSpeedup = e.mirror.modelSpeedup
	st.LaneLoad = e.mirror.laneLoad
	st.FabricLanes = append([]LaneFabricStats(nil), e.mirror.fabric...)
	st.LatencyCount = e.latN
	if n := len(e.latBuf); n > 0 {
		s := make([]int64, n)
		copy(s, e.latBuf)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		sum := int64(0)
		for _, v := range s {
			sum += v
		}
		st.LatencyMeanNs = float64(sum) / float64(n)
		st.LatencyP99Ns = float64(s[n*99/100])
		st.LatencyMaxNs = float64(s[n-1])
	}
	e.mu.Unlock()
	st.InFlight = st.RingOccupied + st.SorterLen
	if st.ModelSpeedup > 0 && st.WindowCycles > 0 {
		st.ModeledMpps = e.cfg.ClockHz / float64(st.WindowCycles) * st.ModelSpeedup / 1e6
	}
	return st
}

// Stats returns the counter snapshot.
//
// Deprecated: use StatsSnapshot (the repository-wide stats accessor
// convention, DESIGN.md §11).
func (e *Engine) Stats() Stats { return e.StatsSnapshot() }

// stopped reports whether the datapath has exited.
func (e *Engine) stopped() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}
