package trie

import (
	"math/rand"
	"testing"

	"wfqsort/internal/matcher"
)

// TestUnequalWidthConfig validates the per-level geometry option of
// paper §III-A / reference [13].
func TestUnequalWidthConfig(t *testing.T) {
	tr := mustNew(t, Config{LiteralBitsPerLevel: []int{6, 4, 2}, RegisterLevels: 2})
	if tr.TagBits() != 12 {
		t.Fatalf("TagBits = %d, want 12", tr.TagBits())
	}
	if tr.Capacity() != 4096 {
		t.Fatalf("Capacity = %d, want 4096", tr.Capacity())
	}
	if tr.Width() != 64 || tr.LevelWidth(1) != 16 || tr.LevelWidth(2) != 4 {
		t.Fatalf("widths = %d/%d/%d, want 64/16/4", tr.Width(), tr.LevelWidth(1), tr.LevelWidth(2))
	}
	if tr.MaxLevelWidth() != 64 {
		t.Fatalf("MaxLevelWidth = %d, want 64", tr.MaxLevelWidth())
	}
	// Memory: 64 + 64·16 + 1024·4 = 64 + 1024 + 4096.
	bits := tr.MemoryBitsPerLevel()
	want := []int{64, 1024, 4096}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("level %d = %d bits, want %d", i, bits[i], want[i])
		}
	}
}

func TestUnequalWidthValidation(t *testing.T) {
	if _, err := New(Config{LiteralBitsPerLevel: []int{4, 1}}); err == nil {
		t.Error("undersized level accepted")
	}
	if _, err := New(Config{LiteralBitsPerLevel: []int{7, 4}}); err == nil {
		t.Error("oversized level accepted")
	}
	if _, err := New(Config{LiteralBitsPerLevel: []int{4, 4}, Levels: 3}); err == nil {
		t.Error("conflicting Levels accepted")
	}
	if _, err := New(Config{LiteralBitsPerLevel: []int{6, 6, 6, 6, 6}}); err == nil {
		t.Error("too many tag bits accepted")
	}
	if _, err := New(Config{LiteralBitsPerLevel: []int{4, 4, 4}, Levels: 3}); err != nil {
		t.Error("matching Levels rejected")
	}
}

// TestUnequalWidthDifferential drives mixed geometries against the
// linear-scan oracle, exactly like the uniform-width differential test.
func TestUnequalWidthDifferential(t *testing.T) {
	geometries := [][]int{
		{6, 4, 2},
		{2, 4, 6},
		{3, 6, 3},
		{5, 2, 5},
	}
	for _, geo := range geometries {
		geo := geo
		t.Run("", func(t *testing.T) {
			tr := mustNew(t, Config{LiteralBitsPerLevel: geo, RegisterLevels: 1})
			ref := make(oracle)
			rng := rand.New(rand.NewSource(77))
			capacity := tr.Capacity()
			live := make([]int, 0, 512)
			for step := 0; step < 2500; step++ {
				tag := rng.Intn(capacity)
				switch op := rng.Intn(10); {
				case op < 5:
					res, err := tr.Insert(tag)
					if err != nil {
						t.Fatalf("step %d: Insert(%d): %v", step, tag, err)
					}
					wantC, wantF, wantE := ref.closest(tag)
					if res.Found != wantF || (wantF && res.Closest != wantC) || res.Exact != wantE {
						t.Fatalf("step %d: Insert(%d) = %+v, oracle (%d,%v,%v)", step, tag, res, wantC, wantF, wantE)
					}
					if !ref[tag] {
						ref[tag] = true
						live = append(live, tag)
					}
				case op < 7 && len(live) > 0:
					i := rng.Intn(len(live))
					victim := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					delete(ref, victim)
					if err := tr.Delete(victim); err != nil {
						t.Fatalf("step %d: Delete(%d): %v", step, victim, err)
					}
				default:
					res, err := tr.SearchClosest(tag)
					if err != nil {
						t.Fatalf("step %d: SearchClosest(%d): %v", step, tag, err)
					}
					wantC, wantF, wantE := ref.closest(tag)
					if res.Found != wantF || (wantF && res.Closest != wantC) || res.Exact != wantE {
						t.Fatalf("step %d: Search(%d) = %+v, oracle (%d,%v,%v)", step, tag, res, wantC, wantF, wantE)
					}
				}
			}
			if st := tr.Stats(); st.MaxReadDepth > len(geo) {
				t.Fatalf("search depth %d exceeds %d levels", st.MaxReadDepth, len(geo))
			}
		})
	}
}

// TestWidestNodeBoundsMatcher reproduces the paper's argument for equal
// node widths: the matcher for the widest level dominates the cycle
// time, so a 6-4-2 tree is no faster than a uniform 4-4-4 tree despite
// its narrow bottom level, while costing a bigger matcher.
func TestWidestNodeBoundsMatcher(t *testing.T) {
	delay := func(width int) int {
		c, err := matcher.Build(matcher.SelectLookAhead, width)
		if err != nil {
			t.Fatalf("Build(%d): %v", width, err)
		}
		return c.Delay()
	}
	uniform := delay(16) // 4-4-4: every level's matcher is 16 bits wide
	unequal := delay(64) // 6-4-2: the level-0 matcher is 64 bits wide
	if unequal <= uniform {
		t.Fatalf("64-bit matcher delay %d not worse than 16-bit %d — the paper's §III-A argument should hold",
			unequal, uniform)
	}
}

// TestUnequalWidthSectionDelete checks Fig. 6 reclamation on a wide
// root: a 6-bit root yields 64 sections of 64 values.
func TestUnequalWidthSectionDelete(t *testing.T) {
	tr := mustNew(t, Config{LiteralBitsPerLevel: []int{6, 4, 2}})
	mustInsert(t, tr, 0, 63, 64, 100, 4000)
	removed, err := tr.DeleteSection(0) // values 0..63
	if err != nil {
		t.Fatalf("DeleteSection: %v", err)
	}
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	for _, tag := range []int{64, 100, 4000} {
		ok, err := tr.Contains(tag)
		if err != nil || !ok {
			t.Fatalf("tag %d lost (%v)", tag, err)
		}
	}
	if _, err := tr.DeleteSection(64); err == nil {
		t.Error("out-of-range root literal accepted")
	}
}
