package trie

import (
	"math/rand"
	"strings"
	"testing"
)

// fig45Config is the tree geometry of the paper's worked examples:
// 6-bit values, three levels of 2-bit literals (4-bit nodes).
func fig45Config() Config {
	return Config{Levels: 3, LiteralBits: 2, RegisterLevels: 2}
}

func mustNew(t *testing.T, cfg Config) *Trie {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return tr
}

func mustInsert(t *testing.T, tr *Trie, tags ...int) {
	t.Helper()
	for _, tag := range tags {
		if _, err := tr.Insert(tag); err != nil {
			t.Fatalf("Insert(%#b): %v", tag, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"fig4", fig45Config(), true},
		{"zero levels", Config{Levels: 0, LiteralBits: 4}, false},
		{"literal too small", Config{Levels: 3, LiteralBits: 1}, false},
		{"literal too large", Config{Levels: 3, LiteralBits: 7}, false},
		{"too many tag bits", Config{Levels: 7, LiteralBits: 4}, false},
		{"register levels negative", Config{Levels: 3, LiteralBits: 4, RegisterLevels: -1}, false},
		{"register levels too many", Config{Levels: 3, LiteralBits: 4, RegisterLevels: 4}, false},
		{"all levels in registers", Config{Levels: 3, LiteralBits: 4, RegisterLevels: 3}, true},
		{"all levels in sram", Config{Levels: 3, LiteralBits: 4, RegisterLevels: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err == nil) != tt.ok {
				t.Fatalf("New(%+v) error = %v, want ok=%v", tt.cfg, err, tt.ok)
			}
		})
	}
}

func TestGeometry(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	if tr.TagBits() != 12 {
		t.Errorf("TagBits = %d, want 12", tr.TagBits())
	}
	if tr.Capacity() != 4096 {
		t.Errorf("Capacity = %d, want 4096", tr.Capacity())
	}
	if tr.Width() != 16 {
		t.Errorf("Width = %d, want 16", tr.Width())
	}
	if tr.Levels() != 3 {
		t.Errorf("Levels = %d, want 3", tr.Levels())
	}
}

// TestMemorySizing checks the paper's equations (2)-(3): for the silicon
// geometry the first two levels total 272 bits and the third is 4 kbit.
func TestMemorySizing(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	got := tr.MemoryBitsPerLevel()
	want := []int{16, 256, 4096}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("level %d memory = %d bits, want %d", i, got[i], want[i])
		}
	}
	if got[0]+got[1] != 272 {
		t.Errorf("register levels total %d bits, paper says 272", got[0]+got[1])
	}
	if tr.TotalMemoryBits() != 16+256+4096 {
		t.Errorf("TotalMemoryBits = %d, want %d", tr.TotalMemoryBits(), 16+256+4096)
	}
}

// TestFig4Walkthrough replays the paper's Fig. 4 example verbatim: a tree
// storing 001001, 110101 and 110111; a search for incoming tag 110110
// must return closest match 110101.
func TestFig4Walkthrough(t *testing.T) {
	tr := mustNew(t, fig45Config())
	mustInsert(t, tr, 0b001001, 0b110101, 0b110111)

	res, err := tr.SearchClosest(0b110110)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if !res.Found || res.Closest != 0b110101 {
		t.Fatalf("SearchClosest(110110) = %+v, want closest 110101", res)
	}
	if res.Exact {
		t.Fatal("SearchClosest(110110) reported exact; 110110 is not stored")
	}

	// Completing the paper's walkthrough: inserting 110110 only updates
	// the third-level node ("the only node that requires an update").
	before := tr.Stats().NodeWrites
	if _, err := tr.Insert(0b110110); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if writes := tr.Stats().NodeWrites - before; writes != 1 {
		t.Fatalf("Insert(110110) wrote %d nodes, want 1", writes)
	}
	ok, err := tr.Contains(0b110110)
	if err != nil || !ok {
		t.Fatalf("Contains(110110) = %v, %v; want true", ok, err)
	}
}

// TestFig5BackupPath replays Fig. 5: a search for 110100 succeeds in the
// first two levels but fails in the third; no backup exists in the
// second-level node (it holds a single literal), so the root-level backup
// is followed and the maximum path below it returns the next lowest tag.
func TestFig5BackupPath(t *testing.T) {
	tr := mustNew(t, fig45Config())
	mustInsert(t, tr, 0b001011, 0b110101)

	res, err := tr.SearchClosest(0b110100)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if !res.Found || res.Closest != 0b001011 {
		t.Fatalf("SearchClosest(110100) = %+v, want closest 001011 via root backup", res)
	}
}

// TestFig5PointC is the figure's "Point C" variant: when the second-level
// node also holds a smaller literal, that closer backup is used instead
// of the root's.
func TestFig5PointC(t *testing.T) {
	tr := mustNew(t, fig45Config())
	mustInsert(t, tr, 0b001011, 0b110101, 0b110001)

	res, err := tr.SearchClosest(0b110100)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if !res.Found || res.Closest != 0b110001 {
		t.Fatalf("SearchClosest(110100) = %+v, want closest 110001 via level-1 backup", res)
	}
}

func TestSearchEmptyTree(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	res, err := tr.SearchClosest(100)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if res.Found {
		t.Fatalf("empty tree returned a match: %+v", res)
	}
	if !tr.Empty() {
		t.Fatal("Empty() = false on new tree")
	}
}

func TestSearchNoSmallerTag(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 2000)
	res, err := tr.SearchClosest(1999)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if res.Found {
		t.Fatalf("search below all tags returned %+v, want not found", res)
	}
}

func TestSearchExact(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 1234)
	res, err := tr.SearchClosest(1234)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if !res.Found || !res.Exact || res.Closest != 1234 {
		t.Fatalf("SearchClosest(1234) = %+v, want exact 1234", res)
	}
}

func TestInsertDuplicateSharesMarker(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 55, 55, 55)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after 3 inserts of one value, want 1", tr.Len())
	}
	res, err := tr.Insert(55)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if !res.Exact {
		t.Fatalf("duplicate insert result %+v, want Exact", res)
	}
}

func TestTagRangeErrors(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	for _, tag := range []int{-1, 4096, 1 << 20} {
		if _, err := tr.Insert(tag); err == nil {
			t.Errorf("Insert(%d) accepted out-of-range tag", tag)
		}
		if _, err := tr.SearchClosest(tag); err == nil {
			t.Errorf("SearchClosest(%d) accepted out-of-range tag", tag)
		}
		if _, err := tr.Contains(tag); err == nil {
			t.Errorf("Contains(%d) accepted out-of-range tag", tag)
		}
		if err := tr.Delete(tag); err == nil {
			t.Errorf("Delete(%d) accepted out-of-range tag", tag)
		}
	}
}

func TestDeleteUnmarked(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 10)
	if err := tr.Delete(11); err == nil {
		t.Fatal("Delete of unmarked tag succeeded")
	}
}

func TestDeleteClearsEmptyAncestors(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 0x123)
	if err := tr.Delete(0x123); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !tr.Empty() {
		t.Fatalf("Len = %d after deleting only tag, want 0", tr.Len())
	}
	// A subsequent search must find nothing (would hit "corrupt tree" if
	// ancestor bits leaked).
	res, err := tr.SearchClosest(4095)
	if err != nil {
		t.Fatalf("SearchClosest after delete: %v", err)
	}
	if res.Found {
		t.Fatalf("search found %+v in emptied tree", res)
	}
}

func TestDeletePreservesSiblings(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 0x120, 0x12F) // same last-level node
	if err := tr.Delete(0x12F); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	res, err := tr.SearchClosest(0xFFF)
	if err != nil {
		t.Fatalf("SearchClosest: %v", err)
	}
	if !res.Found || res.Closest != 0x120 {
		t.Fatalf("after delete search = %+v, want 0x120", res)
	}
}

func TestMinMax(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	if _, ok, err := tr.Min(); err != nil || ok {
		t.Fatalf("Min on empty = ok=%v err=%v, want false,nil", ok, err)
	}
	mustInsert(t, tr, 77, 3000, 5, 2048)
	min, ok, err := tr.Min()
	if err != nil || !ok || min != 5 {
		t.Fatalf("Min = %d,%v,%v; want 5,true,nil", min, ok, err)
	}
	max, ok, err := tr.Max()
	if err != nil || !ok || max != 3000 {
		t.Fatalf("Max = %d,%v,%v; want 3000,true,nil", max, ok, err)
	}
}

// TestFixedSearchDepth verifies the architecture's headline property: a
// closest-match search never performs more than Levels sequential node
// reads, independent of occupancy.
func TestFixedSearchDepth(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		mustInsert(t, tr, rng.Intn(4096))
	}
	tr.ResetStats()
	for i := 0; i < 1000; i++ {
		if _, err := tr.SearchClosest(rng.Intn(4096)); err != nil {
			t.Fatalf("SearchClosest: %v", err)
		}
	}
	st := tr.Stats()
	if st.MaxReadDepth > tr.Levels() {
		t.Fatalf("MaxReadDepth = %d, want ≤ %d (fixed-time guarantee)", st.MaxReadDepth, tr.Levels())
	}
	if st.Searches != 1000 {
		t.Fatalf("Searches = %d, want 1000", st.Searches)
	}
}

// TestDeleteSection reproduces the Fig. 6 range reclamation: clearing one
// root literal removes exactly the tags in that sixteenth of the space.
func TestDeleteSection(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	// Section size for 12-bit tags = 4096/16 = 256 values.
	mustInsert(t, tr, 0, 100, 255, 256, 300, 511, 1000)
	removed, err := tr.DeleteSection(0) // tags 0..255
	if err != nil {
		t.Fatalf("DeleteSection: %v", err)
	}
	if removed != 3 {
		t.Fatalf("DeleteSection removed %d, want 3", removed)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d after section delete, want 4", tr.Len())
	}
	for _, tag := range []int{0, 100, 255} {
		if ok, _ := tr.Contains(tag); ok {
			t.Errorf("tag %d survived section delete", tag)
		}
	}
	for _, tag := range []int{256, 300, 511, 1000} {
		if ok, _ := tr.Contains(tag); !ok {
			t.Errorf("tag %d lost by section delete", tag)
		}
	}
	// Deleting an already-vacant section is a no-op.
	removed, err = tr.DeleteSection(0)
	if err != nil || removed != 0 {
		t.Fatalf("repeat DeleteSection = %d,%v; want 0,nil", removed, err)
	}
	if _, err := tr.DeleteSection(16); err == nil {
		t.Error("DeleteSection(16) accepted out-of-range literal")
	}
}

// oracle is a reference model for randomized differential testing.
type oracle map[int]bool

func (o oracle) closest(tag int) (int, bool, bool) {
	for v := tag; v >= 0; v-- {
		if o[v] {
			return v, true, v == tag
		}
	}
	return 0, false, false
}

// TestRandomizedAgainstOracle drives a long random insert/delete/search
// sequence and compares every result with a linear-scan reference model.
func TestRandomizedAgainstOracle(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{Levels: 2, LiteralBits: 4, RegisterLevels: 1},
		{Levels: 4, LiteralBits: 3, RegisterLevels: 2},
		{Levels: 3, LiteralBits: 2, RegisterLevels: 0},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run("", func(t *testing.T) {
			tr := mustNew(t, cfg)
			ref := make(oracle)
			rng := rand.New(rand.NewSource(42))
			capacity := tr.Capacity()
			live := make([]int, 0, 1024)
			for step := 0; step < 4000; step++ {
				tag := rng.Intn(capacity)
				switch op := rng.Intn(10); {
				case op < 5: // insert
					res, err := tr.Insert(tag)
					if err != nil {
						t.Fatalf("step %d: Insert(%d): %v", step, tag, err)
					}
					wantC, wantF, wantE := ref.closest(tag)
					if res.Found != wantF || (wantF && res.Closest != wantC) || res.Exact != wantE {
						t.Fatalf("step %d: Insert(%d) search = %+v, oracle (%d,%v,%v)",
							step, tag, res, wantC, wantF, wantE)
					}
					if !ref[tag] {
						ref[tag] = true
						live = append(live, tag)
					}
				case op < 7 && len(live) > 0: // delete random live tag
					i := rng.Intn(len(live))
					victim := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					delete(ref, victim)
					if err := tr.Delete(victim); err != nil {
						t.Fatalf("step %d: Delete(%d): %v", step, victim, err)
					}
				default: // search
					res, err := tr.SearchClosest(tag)
					if err != nil {
						t.Fatalf("step %d: SearchClosest(%d): %v", step, tag, err)
					}
					wantC, wantF, wantE := ref.closest(tag)
					if res.Found != wantF || (wantF && res.Closest != wantC) || res.Exact != wantE {
						t.Fatalf("step %d: SearchClosest(%d) = %+v, oracle (%d,%v,%v)",
							step, tag, res, wantC, wantF, wantE)
					}
				}
				if tr.Len() != len(ref) {
					t.Fatalf("step %d: Len = %d, oracle %d", step, tr.Len(), len(ref))
				}
			}
		})
	}
}

// TestWraparoundReuse verifies the cyclic tag-space workflow: fill a
// section, serve it, reclaim it with DeleteSection, then reuse it.
func TestWraparoundReuse(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	for tag := 0; tag < 256; tag += 16 {
		mustInsert(t, tr, tag)
	}
	if _, err := tr.DeleteSection(0); err != nil {
		t.Fatalf("DeleteSection: %v", err)
	}
	// Reuse the vacated range.
	mustInsert(t, tr, 8)
	res, err := tr.SearchClosest(9)
	if err != nil || !res.Found || res.Closest != 8 {
		t.Fatalf("post-reclaim search = %+v, %v; want 8", res, err)
	}
}

func BenchmarkSearchClosest(b *testing.B) {
	tr, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2048; i++ {
		if _, err := tr.Insert(rng.Intn(4096)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.SearchClosest(i & 4095); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := (i * 2654435761) & 4095
		res, err := tr.Insert(tag)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Exact {
			if err := tr.Delete(tag); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestDump(t *testing.T) {
	tr := mustNew(t, fig45Config())
	mustInsert(t, tr, 0b001001, 0b110101)
	out, err := tr.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	// Root node holds literals 00 and 11 → word 1001.
	if !strings.Contains(out, "L0 (4-bit nodes): 0:1001") {
		t.Fatalf("dump root wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("dump should have 3 level lines:\n%s", out)
	}
	empty := mustNew(t, fig45Config())
	out, err = empty.Dump()
	if err != nil || !strings.Contains(out, "(empty)") {
		t.Fatalf("empty dump = %q, %v", out, err)
	}
}
