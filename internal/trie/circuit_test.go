package trie

import (
	"math/rand"
	"testing"

	"wfqsort/internal/matcher"
)

// circuitSearch replays the closest-match search using the gate-level
// dual matcher netlist at every node — the paper's actual per-node
// hardware — following the same lockstep primary/backup algorithm as
// Trie.SearchClosest. It cross-verifies the behavioral tree against the
// synthesized circuits end to end.
func circuitSearch(t *testing.T, tr *Trie, dual *matcher.DualCircuit, tag int) (SearchResult, error) {
	t.Helper()
	idx, prefix := 0, 0
	backupIdx, backupPrefix := -1, 0
	for level := 0; level < tr.Levels(); level++ {
		word, err := tr.levels[level].Read(idx)
		if err != nil {
			return SearchResult{}, err
		}
		lit := tr.literal(tag, level)
		k := uint(tr.bits[level])
		width := tr.widths[level]

		m, err := dual.MatchWord(word, lit)
		if err != nil {
			return SearchResult{}, err
		}

		nextBackupIdx, nextBackupPrefix := -1, 0
		if backupIdx >= 0 {
			bword, err := tr.levels[level].Read(backupIdx)
			if err != nil {
				return SearchResult{}, err
			}
			// The backup path follows the most significant set bit: the
			// same circuit with the position pinned to the top.
			bm, err := dual.MatchWord(bword, width-1)
			if err != nil {
				return SearchResult{}, err
			}
			if !bm.PrimaryOK {
				t.Fatalf("circuit search: empty backup node at level %d", level)
			}
			nextBackupIdx = backupIdx*width + bm.Primary
			nextBackupPrefix = backupPrefix<<k | bm.Primary
		}

		switch {
		case !m.PrimaryOK:
			if nextBackupIdx < 0 {
				return SearchResult{}, nil
			}
			return circuitMaxDescend(t, tr, dual, level+1, nextBackupIdx, nextBackupPrefix)
		case m.Primary != lit:
			return circuitMaxDescend(t, tr, dual, level+1, idx*width+m.Primary, prefix<<k|m.Primary)
		}
		if m.BackupOK {
			nextBackupIdx = idx*width + m.Backup
			nextBackupPrefix = prefix<<k | m.Backup
		}
		backupIdx, backupPrefix = nextBackupIdx, nextBackupPrefix
		prefix = prefix<<k | lit
		idx = idx*width + lit
	}
	return SearchResult{Closest: prefix, Found: true, Exact: true}, nil
}

func circuitMaxDescend(t *testing.T, tr *Trie, dual *matcher.DualCircuit, level, idx, prefix int) (SearchResult, error) {
	t.Helper()
	for ; level < tr.Levels(); level++ {
		word, err := tr.levels[level].Read(idx)
		if err != nil {
			return SearchResult{}, err
		}
		width := tr.widths[level]
		m, err := dual.MatchWord(word, width-1)
		if err != nil {
			return SearchResult{}, err
		}
		if !m.PrimaryOK {
			t.Fatalf("circuit search: empty node on max path at level %d", level)
		}
		prefix = prefix<<uint(tr.bits[level]) | m.Primary
		idx = idx*width + m.Primary
	}
	return SearchResult{Closest: prefix, Found: true}, nil
}

// TestGateLevelSearchEquivalence populates a tree and compares every
// possible search between the behavioral implementation and the
// gate-level matcher netlists driving the same node words.
func TestGateLevelSearchEquivalence(t *testing.T) {
	for _, variant := range []matcher.Variant{matcher.Ripple, matcher.SelectLookAhead} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			// 3 levels × 3-bit literals: 8-bit nodes (the smallest the
			// circuit generator supports), 9-bit tags.
			tr := mustNew(t, Config{Levels: 3, LiteralBits: 3, RegisterLevels: 1})
			dual, err := matcher.BuildDual(variant, 8)
			if err != nil {
				t.Fatalf("BuildDual: %v", err)
			}
			rng := rand.New(rand.NewSource(6))
			for i := 0; i < 96; i++ {
				mustInsert(t, tr, rng.Intn(tr.Capacity()))
			}
			for tag := 0; tag < tr.Capacity(); tag++ {
				want, err := tr.SearchClosest(tag)
				if err != nil {
					t.Fatalf("SearchClosest(%d): %v", tag, err)
				}
				got, err := circuitSearch(t, tr, dual, tag)
				if err != nil {
					t.Fatalf("circuitSearch(%d): %v", tag, err)
				}
				if got != want {
					t.Fatalf("%v: search(%d): circuit %+v, behavioral %+v", variant, tag, got, want)
				}
			}
		})
	}
}
