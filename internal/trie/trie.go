// Package trie implements the multi-bit search tree at the heart of the
// tag sort/retrieve circuit (paper §III-A). The tree stores a one-bit
// marker for every tag value present in the system. A search finds the
// closest existing tag at or below a requested value in a fixed number of
// node accesses — one per level — using the exact-or-next-smallest match
// in each node plus a parallel backup path for failed primary matches
// (paper Figs. 4 and 5).
//
// The implemented geometry mirrors the silicon: three levels of 16-bit
// nodes over 12-bit tags, with the first two levels (272 bits) held in
// registers and the last level (4 kbit) in single-port SRAM. Both the
// geometry and the storage split are configurable.
package trie

import (
	"fmt"
	"math/bits"

	"wfqsort/internal/hwsim"
	"wfqsort/internal/matcher"
	"wfqsort/internal/membus"
)

// Config describes the tree geometry.
type Config struct {
	// Levels is the number of tree levels (L). The silicon uses 3.
	Levels int
	// LiteralBits is the number of tag bits consumed per level (k). Node
	// width is 2^k. The silicon uses 4 (16-bit nodes).
	LiteralBits int
	// LiteralBitsPerLevel, when non-empty, overrides Levels/LiteralBits
	// with an explicit per-level literal width (root first) — the
	// unequal-node-width design option of paper §III-A / reference [13].
	// The paper rejects it for the silicon ("the total search time will
	// be most affected by the search time needed for the widest node")
	// but it is supported here for the ablation study.
	LiteralBitsPerLevel []int
	// RegisterLevels is the number of upper levels held in registers
	// instead of SRAM (the paper keeps the first two levels, 272 bits,
	// in registers). Defaults to Levels-1 capped at 2 when negative.
	RegisterLevels int
	// Fabric, when non-nil, is the memory fabric the tree levels are
	// provisioned from — register levels as zero-latency register
	// regions, SRAM levels as single-bank shared-port regions. When
	// nil a private fabric over Clock is created (standalone use).
	Fabric *membus.Fabric
	// Clock, when non-nil and Fabric is nil, is the clock domain of
	// the private fabric, advanced by SRAM-level accesses so composed
	// circuit models account for tree memory time.
	Clock *hwsim.Clock
}

// maxTagBits bounds the supported tag width so node counts and tag values
// stay comfortably within int range.
const maxTagBits = 26

// Trie is a multi-bit search tree over tag markers. It is not safe for
// concurrent use; the modelled circuit is a single synchronous pipeline.
type Trie struct {
	cfg     Config
	bits    []int  // literal bits per level (root first)
	widths  []int  // node width per level = 2^bits[l]
	shifts  []uint // right-shift extracting each level's literal
	tagBits int
	levels  []*membus.Port   // functional per-level ports (arbitrated)
	regions []*membus.Region // backing regions (debug ports, bulk wipe)
	depths  []int            // node count per level
	count   int              // live markers
	stats   Stats

	// Delete path scratch, preallocated so the steady-state hot path
	// performs no heap allocations.
	delIdxs  []int
	delWords []uint64
}

// Stats reports tree traffic since construction or the last ResetStats.
type Stats struct {
	Searches     uint64 // closest-match searches performed
	NodeReads    uint64 // node words read (all levels)
	NodeWrites   uint64 // node words written
	MaxReadDepth int    // worst sequential node reads in any search
	LastDepth    int    // sequential node reads of the most recent search
}

// New builds an empty tree.
func New(cfg Config) (*Trie, error) {
	bits := cfg.LiteralBitsPerLevel
	if len(bits) == 0 {
		if cfg.Levels <= 0 {
			return nil, fmt.Errorf("trie: levels %d must be positive", cfg.Levels)
		}
		bits = make([]int, cfg.Levels)
		for l := range bits {
			bits[l] = cfg.LiteralBits
		}
	} else {
		if cfg.Levels != 0 && cfg.Levels != len(bits) {
			return nil, fmt.Errorf("trie: levels %d conflicts with %d per-level widths", cfg.Levels, len(bits))
		}
		cfg.Levels = len(bits)
	}
	tagBits := 0
	for l, b := range bits {
		if b < 2 || b > 6 {
			return nil, fmt.Errorf("trie: level %d literal bits %d out of range 2..6", l, b)
		}
		tagBits += b
	}
	if tagBits > maxTagBits {
		return nil, fmt.Errorf("trie: %d total tag bits exceeds %d", tagBits, maxTagBits)
	}
	if cfg.RegisterLevels < 0 || cfg.RegisterLevels > cfg.Levels {
		return nil, fmt.Errorf("trie: register levels %d out of range 0..%d", cfg.RegisterLevels, cfg.Levels)
	}
	fab := cfg.Fabric
	if fab == nil {
		fab = membus.New(cfg.Clock)
	}
	t := &Trie{
		cfg:      cfg,
		bits:     bits,
		widths:   make([]int, cfg.Levels),
		shifts:   make([]uint, cfg.Levels),
		tagBits:  tagBits,
		levels:   make([]*membus.Port, cfg.Levels),
		regions:  make([]*membus.Region, cfg.Levels),
		depths:   make([]int, cfg.Levels),
		delIdxs:  make([]int, cfg.Levels),
		delWords: make([]uint64, cfg.Levels),
	}
	shift := tagBits
	nodes := 1
	for l := 0; l < cfg.Levels; l++ {
		t.widths[l] = 1 << uint(bits[l])
		shift -= bits[l]
		t.shifts[l] = uint(shift)
		t.depths[l] = nodes
		// The first RegisterLevels levels are flip-flop banks read and
		// written combinationally within a cycle; the rest are
		// single-port SRAM blocks behind the fabric arbiter.
		r, err := fab.Provision(membus.RegionConfig{
			Name:     fmt.Sprintf("tree-level-%d", l),
			Depth:    nodes,
			WordBits: t.widths[l],
			Register: l < cfg.RegisterLevels,
		})
		if err != nil {
			return nil, fmt.Errorf("trie: level %d: %w", l, err)
		}
		t.levels[l] = r.Port()
		t.regions[l] = r
		nodes *= t.widths[l]
	}
	return t, nil
}

// DefaultConfig returns the silicon geometry: 3 levels × 4-bit literals
// (16-bit nodes, 12-bit tags), first two levels in registers.
func DefaultConfig() Config {
	return Config{Levels: 3, LiteralBits: 4, RegisterLevels: 2}
}

// TagBits returns the tag width handled by this tree.
func (t *Trie) TagBits() int { return t.tagBits }

// Capacity returns the number of distinct tag values (2^TagBits).
func (t *Trie) Capacity() int { return 1 << uint(t.tagBits) }

// Len returns the number of distinct tags currently marked.
func (t *Trie) Len() int { return t.count }

// Empty reports whether no tags are marked.
func (t *Trie) Empty() bool { return t.count == 0 }

// Width returns the root node width (top-level branching factor).
func (t *Trie) Width() int { return t.widths[0] }

// LevelWidth returns the node width at the given level.
func (t *Trie) LevelWidth(level int) int { return t.widths[level] }

// MaxLevelWidth returns the widest node in the tree — the width that
// bounds the matcher critical path (paper §III-A's argument against
// unequal node widths).
func (t *Trie) MaxLevelWidth() int {
	max := 0
	for _, w := range t.widths {
		if w > max {
			max = w
		}
	}
	return max
}

// Levels returns the number of tree levels.
func (t *Trie) Levels() int { return t.cfg.Levels }

// Stats returns accumulated traffic counters.
func (t *Trie) Stats() Stats { return t.stats }

// ResetStats zeroes the traffic counters.
func (t *Trie) ResetStats() { t.stats = Stats{} }

// MemoryBitsPerLevel returns the marker storage per level in bits: the
// paper's equation (2), LM(l) = 2^(k·(l+1)) for the root level l = 0.
func (t *Trie) MemoryBitsPerLevel() []int {
	out := make([]int, t.cfg.Levels)
	for l := range out {
		out[l] = t.depths[l] * t.widths[l]
	}
	return out
}

// TotalMemoryBits returns the paper's equation (3): the sum of the level
// memories.
func (t *Trie) TotalMemoryBits() int {
	total := 0
	for _, b := range t.MemoryBitsPerLevel() {
		total += b
	}
	return total
}

func (t *Trie) checkTag(tag int) error {
	if tag < 0 || tag >= t.Capacity() {
		return fmt.Errorf("trie: tag %d out of range [0,%d)", tag, t.Capacity())
	}
	return nil
}

// literal extracts the level-l literal (l = 0 is the root / most
// significant literal).
func (t *Trie) literal(tag, level int) int {
	return (tag >> t.shifts[level]) & (t.widths[level] - 1)
}

func (t *Trie) readNode(level, idx int) (uint64, error) {
	w, err := t.levels[level].Read(idx)
	if err != nil {
		return 0, err
	}
	t.stats.NodeReads++
	return w, nil
}

func (t *Trie) writeNode(level, idx int, w uint64) error {
	if err := t.levels[level].Write(idx, w); err != nil {
		return err
	}
	t.stats.NodeWrites++
	return nil
}

// SearchResult is the outcome of a closest-match search.
type SearchResult struct {
	// Closest is the largest marked tag ≤ the searched tag; valid only
	// when Found.
	Closest int
	// Found is false when no marked tag ≤ the searched tag exists (the
	// sorter then treats the new tag as the new minimum, or enters
	// initialization mode when the tree is empty — paper §III-A).
	Found bool
	// Exact reports whether the searched tag itself is marked.
	Exact bool
}

// SearchClosest finds the largest marked tag at or below tag, following
// the primary search with the parallel backup path of paper Fig. 5. The
// backup path descends in lockstep with the primary search — in hardware
// both node fetches hit distributed memories in the same pipeline stage —
// so a search performs exactly one sequential node access per level: the
// fixed-time property central to the architecture.
func (t *Trie) SearchClosest(tag int) (SearchResult, error) {
	if err := t.checkTag(tag); err != nil {
		return SearchResult{}, err
	}
	t.stats.Searches++
	res, seq, err := t.searchClosest(tag)
	if err != nil {
		return SearchResult{}, err
	}
	if seq > t.stats.MaxReadDepth {
		t.stats.MaxReadDepth = seq
	}
	t.stats.LastDepth = seq
	return res, nil
}

func (t *Trie) searchClosest(tag int) (SearchResult, int, error) {
	idx, prefix := 0, 0
	// Backup path state: node index at the current level and the tag
	// literals consumed along the backup path. A fresh, closer backup
	// discovered inside the primary node (paper: "the next smallest bit
	// in the parent node") replaces it; otherwise the old backup from an
	// earlier level keeps descending by its most significant bit
	// ("the node two levels up" case falls out of this lockstep descent).
	backupIdx, backupPrefix := -1, 0
	seq := 0
	for level := 0; level < t.cfg.Levels; level++ {
		seq++
		word, err := t.readNode(level, idx)
		if err != nil {
			return SearchResult{}, seq, err
		}
		lit := t.literal(tag, level)
		k := uint(t.bits[level])
		width := t.widths[level]
		m := matcher.Closest(word, lit, width)

		// Parallel backup descent (same pipeline stage, distinct
		// distributed memory block).
		nextBackupIdx, nextBackupPrefix := -1, 0
		if backupIdx >= 0 {
			bword, err := t.readNode(level, backupIdx)
			if err != nil {
				return SearchResult{}, seq, err
			}
			bit, ok := matcher.HighestSet(bword, width)
			if !ok {
				return SearchResult{}, seq, fmt.Errorf("trie: %w: empty backup node at level %d index %d", hwsim.ErrCorrupt, level, backupIdx)
			}
			nextBackupIdx = backupIdx*width + bit
			nextBackupPrefix = backupPrefix<<k | bit
		}

		switch {
		case !m.PrimaryOK:
			// Primary search failed (paper Fig. 5 point "A"): the backup
			// path, already advanced through this level, completes the
			// lookup via the maximum path below.
			if nextBackupIdx < 0 {
				return SearchResult{}, seq, nil // no marked tag ≤ tag
			}
			res, n, err := t.maxDescendSeq(level+1, nextBackupIdx, nextBackupPrefix)
			return res, seq + n, err
		case m.Primary != lit:
			// Non-exact match: every level below returns its maximum
			// (paper: "all subsequent levels return their maximum value").
			res, n, err := t.maxDescendSeq(level+1, idx*width+m.Primary, prefix<<k|m.Primary)
			return res, seq + n, err
		}
		// Exact so far: adopt the in-node backup when present.
		if m.BackupOK {
			nextBackupIdx = idx*width + m.Backup
			nextBackupPrefix = prefix<<k | m.Backup
		}
		backupIdx, backupPrefix = nextBackupIdx, nextBackupPrefix
		prefix = prefix<<k | lit
		idx = idx*width + lit
	}
	return SearchResult{Closest: prefix, Found: true, Exact: true}, seq, nil
}

// maxDescendSeq follows the most significant set bit from (level, idx)
// downwards, returning the completed tag and the number of sequential
// node accesses used. The subtree is guaranteed non-empty: a set marker
// bit always has at least one descendant (invariant maintained by
// Insert/Delete).
func (t *Trie) maxDescendSeq(level, idx, prefix int) (SearchResult, int, error) {
	seq := 0
	for ; level < t.cfg.Levels; level++ {
		seq++
		word, err := t.readNode(level, idx)
		if err != nil {
			return SearchResult{}, seq, err
		}
		bit, ok := matcher.HighestSet(word, t.widths[level])
		if !ok {
			return SearchResult{}, seq, fmt.Errorf("trie: %w: empty node at level %d index %d on max path", hwsim.ErrCorrupt, level, idx)
		}
		prefix = (prefix << uint(t.bits[level])) | bit
		idx = idx*t.widths[level] + bit
	}
	return SearchResult{Closest: prefix, Found: true}, seq, nil
}

// Insert searches for the closest existing tag (the linked-list insert
// position) and then marks tag in the tree, updating only the nodes whose
// words change. It returns the pre-insert search result.
func (t *Trie) Insert(tag int) (SearchResult, error) {
	res, err := t.SearchClosest(tag)
	if err != nil {
		return SearchResult{}, err
	}
	if res.Exact {
		// Marker already present: duplicate tags share one marker; the
		// translation table and list handle FCFS ordering (paper Fig. 11).
		return res, nil
	}
	if err := t.Mark(tag); err != nil {
		return SearchResult{}, err
	}
	return res, nil
}

// Mark sets the marker for tag without a closest-match search (the write
// phase of an insert, separated so callers can interpose between search
// and commit). Marking an already-present tag is a no-op.
func (t *Trie) Mark(tag int) error {
	if err := t.checkTag(tag); err != nil {
		return err
	}
	idx := 0
	present := true
	for level := 0; level < t.cfg.Levels; level++ {
		lit := t.literal(tag, level)
		word, err := t.readNode(level, idx)
		if err != nil {
			return err
		}
		if word&(1<<uint(lit)) == 0 {
			present = false
			if err := t.writeNode(level, idx, word|1<<uint(lit)); err != nil {
				return err
			}
		}
		idx = idx*t.widths[level] + lit
	}
	if !present {
		t.count++
	}
	return nil
}

// Contains reports whether tag is marked.
func (t *Trie) Contains(tag int) (bool, error) {
	if err := t.checkTag(tag); err != nil {
		return false, err
	}
	idx := 0
	for level := 0; level < t.cfg.Levels; level++ {
		lit := t.literal(tag, level)
		word, err := t.readNode(level, idx)
		if err != nil {
			return false, err
		}
		if word&(1<<uint(lit)) == 0 {
			return false, nil
		}
		idx = idx*t.widths[level] + lit
	}
	return true, nil
}

// Delete clears the marker for tag, clearing emptied ancestor bits so the
// "set bit implies non-empty subtree" invariant that the maximum-path
// descent relies on is preserved. Deleting an unmarked tag is an error.
func (t *Trie) Delete(tag int) error {
	if err := t.checkTag(tag); err != nil {
		return err
	}
	// Collect the path into the preallocated scratch (hot path: no
	// heap allocations in steady state).
	idxs := t.delIdxs
	words := t.delWords
	idx := 0
	for level := 0; level < t.cfg.Levels; level++ {
		lit := t.literal(tag, level)
		word, err := t.readNode(level, idx)
		if err != nil {
			return err
		}
		if word&(1<<uint(lit)) == 0 {
			return fmt.Errorf("trie: %w: delete of unmarked tag %d", hwsim.ErrCorrupt, tag)
		}
		idxs[level] = idx
		words[level] = word
		idx = idx*t.widths[level] + lit
	}
	// Clear bottom-up while nodes empty out.
	for level := t.cfg.Levels - 1; level >= 0; level-- {
		lit := t.literal(tag, level)
		words[level] &^= 1 << uint(lit)
		if err := t.writeNode(level, idxs[level], words[level]); err != nil {
			return err
		}
		if words[level] != 0 {
			break
		}
	}
	t.count--
	return nil
}

// DeleteSection clears one root-level literal and every descendant marker
// in a single operation — the range reclamation of paper Fig. 6, where a
// section of the cyclic tag space that has fallen behind the current
// minimum is vacated for reuse ("all child nodes stemming from this bit
// are isolated and deleted at the same time"). It returns the number of
// markers removed.
func (t *Trie) DeleteSection(rootLiteral int) (int, error) {
	if rootLiteral < 0 || rootLiteral >= t.widths[0] {
		return 0, fmt.Errorf("trie: root literal %d out of range [0,%d)", rootLiteral, t.widths[0])
	}
	root, err := t.readNode(0, 0)
	if err != nil {
		return 0, err
	}
	if root&(1<<uint(rootLiteral)) == 0 {
		return 0, nil // section already vacant
	}
	removed, err := t.clearSubtree(1, rootLiteral)
	if err != nil {
		return 0, err
	}
	if err := t.writeNode(0, 0, root&^(1<<uint(rootLiteral))); err != nil {
		return 0, err
	}
	t.count -= removed
	return removed, nil
}

// clearSubtree zeroes the subtree rooted at (level, idx) and returns the
// number of leaf markers it contained.
func (t *Trie) clearSubtree(level, idx int) (int, error) {
	word, err := t.readNode(level, idx)
	if err != nil {
		return 0, err
	}
	if word == 0 {
		return 0, nil
	}
	removed := 0
	if level == t.cfg.Levels-1 {
		removed = bits.OnesCount64(word)
	} else {
		for b := 0; b < t.widths[level]; b++ {
			if word&(1<<uint(b)) == 0 {
				continue
			}
			n, err := t.clearSubtree(level+1, idx*t.widths[level]+b)
			if err != nil {
				return 0, err
			}
			removed += n
		}
	}
	if err := t.writeNode(level, idx, 0); err != nil {
		return 0, err
	}
	return removed, nil
}

// Min returns the smallest marked tag.
func (t *Trie) Min() (int, bool, error) {
	return t.extreme(false)
}

// Max returns the largest marked tag.
func (t *Trie) Max() (int, bool, error) {
	return t.extreme(true)
}

// Reset bulk-clears every node and the marker count without charging
// memory accesses — the flash-style reinitialization of paper §III-A's
// initialization mode, used by the recovery path before re-marking the
// tree from the authoritative tag store.
func (t *Trie) Reset() {
	for _, r := range t.regions {
		r.Wipe()
	}
	t.count = 0
}

func (t *Trie) extreme(max bool) (int, bool, error) {
	if t.count == 0 {
		return 0, false, nil
	}
	idx, prefix := 0, 0
	for level := 0; level < t.cfg.Levels; level++ {
		word, err := t.readNode(level, idx)
		if err != nil {
			return 0, false, err
		}
		var bit int
		if max {
			b, ok := matcher.HighestSet(word, t.widths[level])
			if !ok {
				return 0, false, fmt.Errorf("trie: %w: empty node at level %d index %d", hwsim.ErrCorrupt, level, idx)
			}
			bit = b
		} else {
			if word == 0 {
				return 0, false, fmt.Errorf("trie: %w: empty node at level %d index %d", hwsim.ErrCorrupt, level, idx)
			}
			bit = bits.TrailingZeros64(word)
		}
		prefix = (prefix << uint(t.bits[level])) | bit
		idx = idx*t.widths[level] + bit
	}
	return prefix, true, nil
}
