// Verification and debug ports of the search tree. Everything in this
// file observes the physical node arrays through the per-level Peek
// ports: no functional accesses are counted, no cycles are charged, and
// any fault-injection wrap on the functional Store seam is bypassed —
// the scrub engine reads the raw memory, exactly like the silicon's
// dedicated verification port.
package trie

import (
	"fmt"
	"math/bits"
	"strings"
)

// Dump renders the tree's node occupancy level by level (verification
// and debugging port): each line shows a level's non-empty nodes as
// index:word pairs.
func (t *Trie) Dump() (string, error) {
	var b strings.Builder
	for level := 0; level < t.cfg.Levels; level++ {
		fmt.Fprintf(&b, "L%d (%d-bit nodes):", level, t.widths[level])
		empty := true
		for idx := 0; idx < t.depths[level]; idx++ {
			word, err := t.regions[level].Peek(idx)
			if err != nil {
				return "", err
			}
			if word != 0 {
				fmt.Fprintf(&b, " %d:%0*b", idx, t.widths[level], word)
				empty = false
			}
		}
		if empty {
			b.WriteString(" (empty)")
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Markers returns every marked tag by scanning the leaf level through
// the debug port (audit use: no accesses counted, no reliance on the
// possibly-corrupt upper levels).
func (t *Trie) Markers() ([]int, error) {
	leaf := t.cfg.Levels - 1
	var out []int
	for idx := 0; idx < t.depths[leaf]; idx++ {
		word, err := t.regions[leaf].Peek(idx)
		if err != nil {
			return nil, err
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			out = append(out, idx<<uint(t.bits[leaf])|b)
		}
	}
	return out, nil
}

// AuditStructure scans the whole tree through the debug port and
// returns a description of every internal inconsistency: a parent bit
// set over an empty child node (which would derail a max-path or
// backup descent into ErrCorrupt) or a non-empty child under a clear
// parent bit (markers unreachable by any search). A healthy tree
// returns an empty slice.
func (t *Trie) AuditStructure() ([]string, error) {
	var bad []string
	for level := 0; level < t.cfg.Levels-1; level++ {
		for idx := 0; idx < t.depths[level]; idx++ {
			word, err := t.regions[level].Peek(idx)
			if err != nil {
				return nil, err
			}
			for b := 0; b < t.widths[level]; b++ {
				child, err := t.regions[level+1].Peek(idx*t.widths[level] + b)
				if err != nil {
					return nil, err
				}
				set := word&(1<<uint(b)) != 0
				switch {
				case set && child == 0:
					bad = append(bad, fmt.Sprintf("level %d node %d bit %d set over empty child", level, idx, b))
				case !set && child != 0:
					bad = append(bad, fmt.Sprintf("level %d node %d bit %d clear over non-empty child", level, idx, b))
				}
			}
		}
	}
	return bad, nil
}
