package trie

import (
	"testing"
)

// FuzzTrieAgainstOracle interprets the input as an operation stream over
// the silicon geometry, comparing every result against the linear-scan
// oracle. Run continuously with
// `go test -fuzz=FuzzTrieAgainstOracle ./internal/trie`.
func FuzzTrieAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 0x12, 1, 0x12, 2, 0x12})
	f.Add([]byte{0, 0xFF, 0, 0x00, 1, 0x80, 2, 0xFF})
	seed := make([]byte, 0, 64)
	for i := 0; i < 32; i++ {
		seed = append(seed, byte(i%3), byte(i*41))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := New(Config{Levels: 2, LiteralBits: 4, RegisterLevels: 1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ref := make(oracle)
		for i := 0; i+2 <= len(data); i += 2 {
			op := data[i] % 3
			tag := int(data[i+1]) // 8-bit tags in a 256-value universe
			switch op {
			case 0: // insert
				res, err := tr.Insert(tag)
				if err != nil {
					t.Fatalf("op %d: Insert(%d): %v", i, tag, err)
				}
				wantC, wantF, wantE := ref.closest(tag)
				if res.Found != wantF || (wantF && res.Closest != wantC) || res.Exact != wantE {
					t.Fatalf("op %d: Insert(%d) = %+v, oracle (%d,%v,%v)", i, tag, res, wantC, wantF, wantE)
				}
				ref[tag] = true
			case 1: // delete if present
				if ref[tag] {
					if err := tr.Delete(tag); err != nil {
						t.Fatalf("op %d: Delete(%d): %v", i, tag, err)
					}
					delete(ref, tag)
				} else if err := tr.Delete(tag); err == nil {
					t.Fatalf("op %d: Delete(%d) of unmarked succeeded", i, tag)
				}
			default: // search
				res, err := tr.SearchClosest(tag)
				if err != nil {
					t.Fatalf("op %d: SearchClosest(%d): %v", i, tag, err)
				}
				wantC, wantF, wantE := ref.closest(tag)
				if res.Found != wantF || (wantF && res.Closest != wantC) || res.Exact != wantE {
					t.Fatalf("op %d: Search(%d) = %+v, oracle (%d,%v,%v)", i, tag, res, wantC, wantF, wantE)
				}
			}
			if tr.Len() != len(ref) {
				t.Fatalf("op %d: Len %d, oracle %d", i, tr.Len(), len(ref))
			}
		}
	})
}
