package trie

import (
	"strings"
	"testing"
)

// faultStore wraps a level store and lets tests corrupt specific words,
// verifying the tree surfaces structural corruption as errors rather
// than panics or wrong answers.
//
// The production code never produces these states; the injection models
// an SEU-style bit flip in a marker memory.

// corrupt flips the given node word via the package-internal store.
func corrupt(t *testing.T, tr *Trie, level, idx int, val uint64) {
	t.Helper()
	if err := tr.levels[level].Write(idx, val); err != nil {
		t.Fatalf("corrupt write: %v", err)
	}
}

// TestCorruptMaxPathSurfaces: a parent bit set over an empty child node
// breaks the "marker implies non-empty subtree" invariant; the max-path
// descent must report it.
func TestCorruptMaxPathSurfaces(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 0x210, 0x300)
	// Clear the leaf node of 0x300 without clearing ancestors.
	corrupt(t, tr, 2, 0x30, 0)
	// Searching 0x400 takes the non-exact branch at the root (closest
	// literal 3) and follows the max path into the emptied leaf.
	_, err := tr.SearchClosest(0x400)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted max path returned %v, want corrupt-tree error", err)
	}
}

// TestCorruptBackupSurfaces: a backup pointer into an emptied node is
// detected during the lockstep descent.
func TestCorruptBackupSurfaces(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	// 0x100 and 0x200 share the root; searching 0x2FF goes through
	// literal 2 with a backup at literal 1.
	mustInsert(t, tr, 0x100, 0x200)
	// Empty the 0x1?? subtree's level-1 node behind the backup pointer.
	corrupt(t, tr, 1, 0x1, 0)
	_, err := tr.SearchClosest(0x2FF)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted backup path returned %v, want corrupt-tree error", err)
	}
}

// TestCorruptExtreme: Min/Max descents detect an empty node under a set
// parent bit.
func TestCorruptExtreme(t *testing.T) {
	tr := mustNew(t, DefaultConfig())
	mustInsert(t, tr, 0x123)
	corrupt(t, tr, 2, 0x12, 0)
	if _, _, err := tr.Min(); err == nil {
		t.Fatal("Min over corrupted tree succeeded")
	}
	if _, _, err := tr.Max(); err == nil {
		t.Fatal("Max over corrupted tree succeeded")
	}
}

// TestCorruptionNeverPanics fuzzes random single-word corruptions and
// asserts every operation either succeeds or errors — never panics.
func TestCorruptionNeverPanics(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		tr := mustNew(t, Config{Levels: 3, LiteralBits: 2, RegisterLevels: 1})
		mustInsert(t, tr, 5, 17, 33, 60)
		// Flip one word per trial.
		level := seed % 3
		idx := seed % tr.depths[level]
		corrupt(t, tr, level, idx, uint64(seed*2654435761)&0xF)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: panic: %v", seed, r)
				}
			}()
			for tag := 0; tag < tr.Capacity(); tag++ {
				_, _ = tr.SearchClosest(tag)
				_, _ = tr.Contains(tag)
			}
			_, _, _ = tr.Min()
			_, _, _ = tr.Max()
		}()
	}
}
