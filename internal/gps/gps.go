// Package gps implements the generalized processor sharing fluid model —
// the idealized scheduler every fair-queueing algorithm emulates (paper
// §II-A). In GPS, every backlogged session is served simultaneously at a
// rate proportional to its weight; packets are infinitely divisible
// fluid. The simulator computes exact per-packet departure times and
// per-flow service curves, providing the ground truth against which WFQ
// and the round-robin family are measured: WFQ finishes every packet
// within one maximum packet transmission time of its GPS departure.
package gps

import (
	"fmt"
	"math"
	"sort"

	"wfqsort/internal/packet"
)

// Result holds the outcome of a fluid simulation.
type Result struct {
	// Finish[i] is the GPS departure time of the packet with ID i.
	Finish []float64
	// FlowBits[f] is the total traffic of flow f in bits.
	FlowBits []float64
	// Makespan is the time the system finally empties.
	Makespan float64
}

type flowState struct {
	queue  []pkt // FIFO
	weight float64
}

type pkt struct {
	id        int
	remaining float64 // bits left to serve
}

// Simulate runs the fluid model over the given arrivals (any order; they
// are sorted internally by arrival time) with per-flow weights and a link
// capacity in bits/s. Packet IDs must be unique and in [0, len(pkts)).
func Simulate(pkts []packet.Packet, weights []float64, capacityBps float64) (*Result, error) {
	if capacityBps <= 0 {
		return nil, fmt.Errorf("gps: capacity %v must be positive", capacityBps)
	}
	for f, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("gps: flow %d weight %v must be positive", f, w)
		}
	}
	arr := make([]packet.Packet, len(pkts))
	copy(arr, pkts)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Arrival < arr[j].Arrival })

	res := &Result{
		Finish:   make([]float64, len(pkts)),
		FlowBits: make([]float64, len(weights)),
	}
	for i := range res.Finish {
		res.Finish[i] = math.NaN()
	}

	flows := make([]flowState, len(weights))
	for f := range flows {
		flows[f].weight = weights[f]
	}
	backlogged := 0
	sumW := 0.0
	now := 0.0
	next := 0 // next arrival index

	for next < len(arr) || backlogged > 0 {
		// Jump to the first arrival if the system is idle.
		if backlogged == 0 {
			if next >= len(arr) {
				break
			}
			now = arr[next].Arrival
		}
		// Horizon: the next arrival, if any.
		horizon := math.Inf(1)
		if next < len(arr) {
			horizon = arr[next].Arrival
		}
		// Serve fluid until the horizon, completing head packets as they
		// drain.
		for backlogged > 0 && now < horizon {
			// Earliest head-packet completion across backlogged flows.
			dt := math.Inf(1)
			for f := range flows {
				if len(flows[f].queue) == 0 {
					continue
				}
				rate := capacityBps * flows[f].weight / sumW
				if d := flows[f].queue[0].remaining / rate; d < dt {
					dt = d
				}
			}
			step := math.Min(dt, horizon-now)
			for f := range flows {
				if len(flows[f].queue) == 0 {
					continue
				}
				rate := capacityBps * flows[f].weight / sumW
				flows[f].queue[0].remaining -= rate * step
			}
			now += step
			// Pop completed heads (cascading within a flow is impossible
			// in one step: only heads drain).
			for f := range flows {
				q := flows[f].queue
				if len(q) > 0 && q[0].remaining <= 1e-9 {
					res.Finish[q[0].id] = now
					flows[f].queue = q[1:]
					if len(flows[f].queue) == 0 {
						backlogged--
						sumW -= flows[f].weight
					}
				}
			}
			if step == 0 && dt == math.Inf(1) {
				return nil, fmt.Errorf("gps: stalled at t=%v", now)
			}
		}
		// Admit arrivals at the horizon.
		if next < len(arr) && now >= horizon {
			t := arr[next].Arrival
			for next < len(arr) && arr[next].Arrival == t {
				p := arr[next]
				if p.Flow < 0 || p.Flow >= len(flows) {
					return nil, fmt.Errorf("gps: packet %d flow %d out of range [0,%d)", p.ID, p.Flow, len(flows))
				}
				if p.ID < 0 || p.ID >= len(res.Finish) {
					return nil, fmt.Errorf("gps: packet ID %d out of range [0,%d)", p.ID, len(res.Finish))
				}
				if len(flows[p.Flow].queue) == 0 {
					backlogged++
					sumW += flows[p.Flow].weight
				}
				flows[p.Flow].queue = append(flows[p.Flow].queue, pkt{id: p.ID, remaining: p.Bits()})
				res.FlowBits[p.Flow] += p.Bits()
				next++
			}
		}
	}
	res.Makespan = now
	return res, nil
}

// ServiceShare returns each flow's fraction of the total bits served —
// under sustained backlog this converges to weight/Σweights, the fairness
// target every practical scheduler approximates.
func (r *Result) ServiceShare() []float64 {
	total := 0.0
	for _, b := range r.FlowBits {
		total += b
	}
	out := make([]float64, len(r.FlowBits))
	if total == 0 {
		return out
	}
	for f, b := range r.FlowBits {
		out[f] = b / total
	}
	return out
}
