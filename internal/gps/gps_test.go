package gps

import (
	"math"
	"testing"

	"wfqsort/internal/packet"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, []float64{1}, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Simulate(nil, []float64{0}, 1e6); err == nil {
		t.Error("zero weight accepted")
	}
	bad := []packet.Packet{{ID: 0, Flow: 5, Size: 100}}
	if _, err := Simulate(bad, []float64{1}, 1e6); err == nil {
		t.Error("out-of-range flow accepted")
	}
	bad2 := []packet.Packet{{ID: 3, Flow: 0, Size: 100}}
	if _, err := Simulate(bad2, []float64{1}, 1e6); err == nil {
		t.Error("out-of-range packet ID accepted")
	}
}

func TestSinglePacket(t *testing.T) {
	// One 1000-bit packet on a 1000 b/s link: finishes at t=1+... arrives
	// at t=2, finishes at t=3.
	pkts := []packet.Packet{{ID: 0, Flow: 0, Size: 125, Arrival: 2}}
	res, err := Simulate(pkts, []float64{1}, 1000)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !approx(res.Finish[0], 3, 1e-9) {
		t.Fatalf("finish = %v, want 3", res.Finish[0])
	}
	if !approx(res.Makespan, 3, 1e-9) {
		t.Fatalf("makespan = %v, want 3", res.Makespan)
	}
}

// TestEqualWeightsShareEqually: two flows, simultaneous equal packets,
// equal weights → both drain at C/2 and finish together.
func TestEqualWeightsShareEqually(t *testing.T) {
	pkts := []packet.Packet{
		{ID: 0, Flow: 0, Size: 125, Arrival: 0}, // 1000 bits
		{ID: 1, Flow: 1, Size: 125, Arrival: 0},
	}
	res, err := Simulate(pkts, []float64{1, 1}, 1000)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !approx(res.Finish[0], 2, 1e-9) || !approx(res.Finish[1], 2, 1e-9) {
		t.Fatalf("finishes = %v, want both 2 (each at C/2)", res.Finish)
	}
}

// TestWeightedShares: weight 3 vs 1 → the heavy flow drains 3× faster.
func TestWeightedShares(t *testing.T) {
	pkts := []packet.Packet{
		{ID: 0, Flow: 0, Size: 125, Arrival: 0},
		{ID: 1, Flow: 1, Size: 125, Arrival: 0},
	}
	res, err := Simulate(pkts, []float64{3, 1}, 1000)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	// Flow 0 at 750 b/s finishes 1000 bits at t=4/3. Then flow 1 has
	// the link alone: it served 250 b/s × 4/3 = 333.3 bits, remaining
	// 666.7 at 1000 b/s → total 4/3 + 0.6667 = 2.
	if !approx(res.Finish[0], 4.0/3, 1e-9) {
		t.Fatalf("heavy flow finish %v, want 4/3", res.Finish[0])
	}
	if !approx(res.Finish[1], 2, 1e-9) {
		t.Fatalf("light flow finish %v, want 2", res.Finish[1])
	}
}

// TestWorkConserving: after the heavy flow leaves, the light one gets the
// whole link (verified above); also the system must finish all traffic at
// exactly total_bits/C when continuously backlogged.
func TestWorkConserving(t *testing.T) {
	var pkts []packet.Packet
	id := 0
	totalBits := 0.0
	for f := 0; f < 3; f++ {
		for i := 0; i < 10; i++ {
			p := packet.Packet{ID: id, Flow: f, Size: 125, Arrival: 0}
			pkts = append(pkts, p)
			totalBits += p.Bits()
			id++
		}
	}
	res, err := Simulate(pkts, []float64{1, 2, 3}, 1e4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !approx(res.Makespan, totalBits/1e4, 1e-9) {
		t.Fatalf("makespan %v, want %v (work conservation)", res.Makespan, totalBits/1e4)
	}
	for i, f := range res.Finish {
		if math.IsNaN(f) {
			t.Fatalf("packet %d never finished", i)
		}
	}
}

// TestFIFOWithinFlow: packets of the same flow must finish in order.
func TestFIFOWithinFlow(t *testing.T) {
	pkts := []packet.Packet{
		{ID: 0, Flow: 0, Size: 1500, Arrival: 0},
		{ID: 1, Flow: 0, Size: 40, Arrival: 0.0001},
		{ID: 2, Flow: 0, Size: 400, Arrival: 0.0002},
	}
	res, err := Simulate(pkts, []float64{1}, 1e6)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !(res.Finish[0] < res.Finish[1] && res.Finish[1] < res.Finish[2]) {
		t.Fatalf("intra-flow order violated: %v", res.Finish)
	}
}

// TestIdlePeriodsReset: traffic separated by idle gaps behaves like
// independent busy periods.
func TestIdlePeriodsReset(t *testing.T) {
	pkts := []packet.Packet{
		{ID: 0, Flow: 0, Size: 125, Arrival: 0},
		{ID: 1, Flow: 0, Size: 125, Arrival: 100},
	}
	res, err := Simulate(pkts, []float64{1}, 1000)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !approx(res.Finish[0], 1, 1e-9) || !approx(res.Finish[1], 101, 1e-9) {
		t.Fatalf("finishes %v, want [1 101]", res.Finish)
	}
}

// TestServiceShareProportionalToWeights: under sustained equal offered
// load, served shares track weights.
func TestServiceShareProportionalToWeights(t *testing.T) {
	var pkts []packet.Packet
	id := 0
	for f := 0; f < 2; f++ {
		for i := 0; i < 100; i++ {
			pkts = append(pkts, packet.Packet{ID: id, Flow: f, Size: 125, Arrival: 0})
			id++
		}
	}
	res, err := Simulate(pkts, []float64{1, 3}, 1e5)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	shares := res.ServiceShare()
	// Equal totals offered → equal total shares once drained; the
	// fairness signal is in the finish times: flow 1 (weight 3) must
	// clear its backlog earlier.
	if !approx(shares[0], 0.5, 1e-9) || !approx(shares[1], 0.5, 1e-9) {
		t.Fatalf("shares %v, want equal totals", shares)
	}
	lastFinish := func(flow int) float64 {
		max := 0.0
		for _, p := range pkts {
			if p.Flow == flow && res.Finish[p.ID] > max {
				max = res.Finish[p.ID]
			}
		}
		return max
	}
	if lastFinish(1) >= lastFinish(0) {
		t.Fatalf("weight-3 flow finished at %v, not before weight-1 flow at %v", lastFinish(1), lastFinish(0))
	}
}

func TestServiceShareEmpty(t *testing.T) {
	res := &Result{FlowBits: []float64{0, 0}}
	s := res.ServiceShare()
	if s[0] != 0 || s[1] != 0 {
		t.Fatalf("empty shares = %v", s)
	}
}

func BenchmarkSimulate(b *testing.B) {
	var pkts []packet.Packet
	id := 0
	for f := 0; f < 8; f++ {
		for i := 0; i < 50; i++ {
			pkts = append(pkts, packet.Packet{ID: id, Flow: f, Size: 100 + 10*f, Arrival: float64(i) * 0.001})
			id++
		}
	}
	weights := []float64{1, 2, 3, 4, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(pkts, weights, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}
