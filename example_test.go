package wfqsort_test

import (
	"fmt"

	"wfqsort"
)

// ExampleNewSorter demonstrates the tag sort/retrieve circuit as a
// fixed-time priority structure.
func ExampleNewSorter() {
	sorter, err := wfqsort.NewSorter(wfqsort.SorterConfig{Capacity: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	// (finishing tag, packet pointer) in arbitrary order; duplicates are
	// FCFS.
	sorter.Insert(310, 7)
	sorter.Insert(42, 8)
	sorter.Insert(42, 9)
	for sorter.Len() > 0 {
		e, err := sorter.ExtractMin()
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(e.Tag, e.Payload)
	}
	// Output:
	// 42 8
	// 42 9
	// 310 7
}

// ExampleSorter_InsertExtractMin shows the paper's simultaneous
// operation: the minimum departs and a new tag enters in one four-cycle
// window, reusing the departing link.
func ExampleSorter_InsertExtractMin() {
	sorter, _ := wfqsort.NewSorter(wfqsort.SorterConfig{Capacity: 64})
	sorter.Insert(10, 1)
	sorter.Insert(20, 2)
	served, _ := sorter.InsertExtractMin(15, 3)
	fmt.Println("served:", served.Tag)
	next, _ := sorter.PeekMin()
	fmt.Println("next:", next.Tag)
	// Output:
	// served: 10
	// next: 15
}

// ExampleNewScheduler shows the full Fig. 1 datapath throughput model.
func ExampleNewScheduler() {
	sched, err := wfqsort.NewScheduler(wfqsort.SchedulerConfig{
		Weights:     []float64{0.5, 0.5},
		CapacityBps: 40e9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.1f Mpps\n", sched.SupportedPPS()/1e6)
	fmt.Printf("%.1f Gb/s at 140-byte packets\n", sched.SupportedLineRate(140)/1e9)
	// Output:
	// 35.8 Mpps
	// 40.1 Gb/s at 140-byte packets
}
