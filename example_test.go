package wfqsort_test

import (
	"bytes"
	"fmt"

	"wfqsort"
)

// ExampleNewSorter demonstrates the tag sort/retrieve circuit as a
// fixed-time priority structure.
func ExampleNewSorter() {
	sorter, err := wfqsort.NewSorter(wfqsort.SorterConfig{Capacity: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	// (finishing tag, packet pointer) in arbitrary order; duplicates are
	// FCFS.
	sorter.Insert(310, 7)
	sorter.Insert(42, 8)
	sorter.Insert(42, 9)
	for sorter.Len() > 0 {
		e, err := sorter.ExtractMin()
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(e.Tag, e.Payload)
	}
	// Output:
	// 42 8
	// 42 9
	// 310 7
}

// ExampleSorter_InsertExtractMin shows the paper's simultaneous
// operation: the minimum departs and a new tag enters in one four-cycle
// window, reusing the departing link.
func ExampleSorter_InsertExtractMin() {
	sorter, _ := wfqsort.NewSorter(wfqsort.SorterConfig{Capacity: 64})
	sorter.Insert(10, 1)
	sorter.Insert(20, 2)
	served, _ := sorter.InsertExtractMin(15, 3)
	fmt.Println("served:", served.Tag)
	next, _ := sorter.PeekMin()
	fmt.Println("next:", next.Tag)
	// Output:
	// served: 10
	// next: 15
}

// ExampleSorter_Rerank shows the dynamic updates: Remove cancels a
// stored tag in place (the timer-cancellation primitive) and Rerank
// moves one to a new tag (flow re-weighting), re-entering as the newest
// among equals — both charged circuit operations, not rebuilds.
func ExampleSorter_Rerank() {
	sorter, _ := wfqsort.NewSorter(wfqsort.SorterConfig{Capacity: 64})
	sorter.Insert(310, 7)
	sorter.Insert(42, 8)
	sorter.Insert(42, 9)
	// The flow holding packet 7 got a bigger weight: finish tag drops.
	found, _ := sorter.Rerank(310, 7, 42)
	fmt.Println("reranked:", found)
	// The timer behind packet 8 was cancelled before firing.
	found, _ = sorter.Remove(42, 8)
	fmt.Println("removed:", found)
	// Drain order: 9 then 7 — the reranked packet is newest among the
	// 42s, so FCFS among equal tags is preserved.
	for sorter.Len() > 0 {
		e, _ := sorter.ExtractMin()
		fmt.Println(e.Tag, e.Payload)
	}
	// Output:
	// reranked: true
	// removed: true
	// 42 9
	// 42 7
}

// ExampleNewScheduler shows the full Fig. 1 datapath throughput model.
func ExampleNewScheduler() {
	sched, err := wfqsort.NewScheduler(wfqsort.SchedulerConfig{
		Weights:     []float64{0.5, 0.5},
		CapacityBps: 40e9,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.1f Mpps\n", sched.SupportedPPS()/1e6)
	fmt.Printf("%.1f Gb/s at 140-byte packets\n", sched.SupportedLineRate(140)/1e9)
	// Output:
	// 35.8 Mpps
	// 40.1 Gb/s at 140-byte packets
}

// ExampleNewEngine shows the concurrent serving runtime: submit from any
// goroutine, consume served entries in tag order, drain on Stop.
func ExampleNewEngine() {
	eng, err := wfqsort.NewEngine(wfqsort.EngineConfig{Lanes: 2, LaneCapacity: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := eng.Start(); err != nil {
		fmt.Println(err)
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range eng.Served() {
			fmt.Println(s.Tag, s.Payload)
		}
	}()
	eng.Submit(300, 1)
	eng.Submit(12, 2)
	eng.Submit(150, 3)
	if err := eng.Stop(); err != nil {
		fmt.Println(err)
		return
	}
	<-done
	st := eng.StatsSnapshot()
	fmt.Println("conserved:", st.Inserted == st.Extracted+st.Removed+st.FaultLost)
	// Output:
	// 12 2
	// 150 3
	// 300 1
	// conserved: true
}

// ExampleNewPipeline analyses the paper's insert pipeline timing: three
// tree levels, the translation table, and the four-cycle tag-store
// window.
func ExampleNewPipeline() {
	pipe, err := wfqsort.NewPipeline(wfqsort.PipelineConfig{
		Stages: []wfqsort.PipelineStage{
			{Name: "tree", Cycles: 3},
			{Name: "translate", Cycles: 1},
			{Name: "tag-store", Cycles: 4},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	var analysis *wfqsort.PipelineAnalysis
	analysis, err = pipe.Simulate(100)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("interval:", analysis.Interval, "cycles")
	fmt.Println("latency:", analysis.Latency, "cycles")
	// Output:
	// interval: 4 cycles
	// latency: 8 cycles
}

// ExampleWriteArrivals round-trips an arrival trace through the CSV
// interchange format.
func ExampleWriteArrivals() {
	pkts := []wfqsort.Packet{
		{ID: 0, Flow: 1, Size: 1500, Arrival: 0},
		{ID: 1, Flow: 0, Size: 64, Arrival: 0.001},
	}
	var buf bytes.Buffer
	if err := wfqsort.WriteArrivals(&buf, pkts); err != nil {
		fmt.Println(err)
		return
	}
	back, err := wfqsort.ReadArrivals(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(back), "packets, first flow", back[0].Flow)
	// Output:
	// 2 packets, first flow 1
}
