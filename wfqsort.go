// Package wfqsort is a software reproduction of "A Scalable Packet
// Sorting Circuit for High-Speed WFQ Packet Scheduling" (McLaughlin,
// Sezer, Blume, Yang, Kupzog, Noll — SOCC 2006 / IEEE TVLSI 16(7),
// 2008): a behavioral model of the paper's tag sort/retrieve circuit and
// of the complete hardware WFQ scheduler built around it.
//
// The two top-level entry points are:
//
//   - Sorter — the paper's contribution: an associative structure that
//     stores finishing tags in sorted order and returns the minimum in
//     guaranteed fixed time, built from a multi-bit search tree with
//     closest-match circuitry, a translation table, and a linked-list
//     tag storage memory (paper Fig. 3);
//
//   - Scheduler — the full Fig. 1 datapath: WFQ tag computation, shared
//     packet buffer, and the sorter, with cycle accounting reproducing
//     the paper's 35.8 Mpps / 40 Gb/s throughput analysis.
//
// The substrates live in internal/ packages: gate-level matcher circuits
// (internal/matcher — paper Figs. 7–8), the multi-bit trie
// (internal/trie — Figs. 4–5), the tag store (internal/taglist —
// Figs. 9–10), the translation table (internal/transtable — Fig. 11),
// the Table I baseline structures (internal/pqueue), traffic generation
// (internal/traffic — Fig. 6 profiles), scheduling disciplines and the
// GPS fluid reference (internal/schedulers, internal/gps), and the
// 130-nm analytical synthesis model (internal/synthesis — Table II).
package wfqsort

import (
	"fmt"
	"io"

	"wfqsort/internal/aqm"
	"wfqsort/internal/core"
	"wfqsort/internal/engine"
	"wfqsort/internal/membus"
	"wfqsort/internal/network"
	"wfqsort/internal/packet"
	"wfqsort/internal/pipeline"
	"wfqsort/internal/pqueue"
	"wfqsort/internal/rank"
	"wfqsort/internal/scheduler"
	"wfqsort/internal/schedulers"
	"wfqsort/internal/sharded"
	"wfqsort/internal/supervisor"
	"wfqsort/internal/taglist"
	"wfqsort/internal/trace"
)

// Sorter is the tag sort/retrieve circuit (paper Fig. 3). See
// internal/core for the full documentation.
type Sorter = core.Sorter

// SorterConfig configures a Sorter.
type SorterConfig = core.Config

// SorterStats aggregates component traffic counters.
type SorterStats = core.Stats

// Entry is one stored tag with its packet-buffer pointer.
type Entry = taglist.Entry

// Fabric is the banked dual-port memory fabric every component memory
// of a Sorter is provisioned from (DESIGN.md §10). Sorter.Fabric
// returns it; pass one via SorterConfig.Fabric to share a clock domain
// or attach a fault campaign.
type Fabric = membus.Fabric

// MemRegion is one named banked memory carved from a Fabric (e.g.
// "tag-storage"); its Stats and BankStats expose per-region traffic,
// stall, and bank-utilization counters.
type MemRegion = membus.Region

// FabricStats is one region's access/stall/conflict/window counters.
type FabricStats = membus.Stats

// Mode selects the sorter's marker reclamation policy.
type Mode = core.Mode

// Sorter reclamation modes.
const (
	// ModeEager makes the sorter a general-purpose priority structure:
	// markers are reclaimed as tags depart, and inserts may arrive in
	// any order.
	ModeEager = core.ModeEager
	// ModeHardware reproduces the silicon exactly: stale markers remain
	// below the minimum and whole tag-space sections are reclaimed in
	// bulk as virtual time advances (paper Fig. 6).
	ModeHardware = core.ModeHardware
)

// WindowCycles is the fixed clock-cycle budget of one sorter operation
// (2 reads + 2 writes to the tag store, paper Fig. 9).
const WindowCycles = core.WindowCycles

// Sentinel errors returned by Sorter operations.
var (
	// ErrEmpty is returned by ExtractMin on an empty sorter.
	ErrEmpty = taglist.ErrEmpty
	// ErrFull is returned by Insert on a full tag store.
	ErrFull = taglist.ErrFull
	// ErrBehindMinimum is returned in strict hardware mode for inserts
	// below the current minimum.
	ErrBehindMinimum = core.ErrBehindMinimum
	// ErrNotEager is returned by the dynamic updates (Sorter.Remove,
	// Sorter.Rerank) in ModeHardware: stale-marker reclamation cannot
	// unlink an interior entry, so dynamic updates require ModeEager.
	ErrNotEager = core.ErrNotEager
)

// NewSorter builds a tag sort/retrieve circuit. The zero-value geometry
// selects the silicon configuration: a 3-level tree of 16-bit nodes over
// 12-bit tags.
func NewSorter(cfg SorterConfig) (*Sorter, error) {
	return core.New(cfg)
}

// Scheduler is the complete WFQ scheduler of paper Fig. 1. See
// internal/scheduler for the full documentation.
type Scheduler = scheduler.Scheduler

// SchedulerConfig configures a Scheduler.
type SchedulerConfig = scheduler.Config

// SchedulerResult is the outcome of a Scheduler run.
type SchedulerResult = scheduler.Result

// DefaultClockHz is the paper's implementation clock (143.2 MHz: one
// 4-cycle window per packet ⇒ 35.8 Mpps).
const DefaultClockHz = scheduler.DefaultClockHz

// FullPolicy selects the scheduler's overload behaviour.
type FullPolicy = scheduler.FullPolicy

// Overload policies for SchedulerConfig.OnFull.
const (
	// FullError aborts the run on an un-admittable packet (default).
	FullError = scheduler.FullError
	// FullTailDrop drops arrivals that find the buffer full.
	FullTailDrop = scheduler.FullTailDrop
	// FullRED applies random early detection before the buffer fills.
	FullRED = scheduler.FullRED
)

// NewScheduler builds the full scheduler datapath.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	return scheduler.New(cfg)
}

// ShardedSorter scales the sort/retrieve circuit across N independent
// lanes: the tag space is partitioned so every tag maps to exactly one
// lane, and a log₂(N)-deep min-combining select tree over the lane
// heads keeps extraction fixed-time. It serves exactly the sequence a
// single Sorter would. See internal/sharded and DESIGN.md §9.
type ShardedSorter = sharded.ShardedSorter

// ShardedConfig configures a ShardedSorter.
type ShardedConfig = sharded.Config

// ShardedRequest is one insert of a sharded batch.
type ShardedRequest = sharded.Request

// ShardedStats aggregates traffic across all lanes plus the sharding
// layer's own accounting (ShardedSorter.StatsSnapshot).
type ShardedStats = sharded.Stats

// NewShardedSorter builds an N-lane sharded sorter (default 4 lanes of
// 1024 links each, interleaved tag partitioning).
func NewShardedSorter(cfg ShardedConfig) (*ShardedSorter, error) {
	return sharded.New(cfg)
}

// Engine is the concurrent line-rate serving runtime over a
// ShardedSorter: N producer goroutines submit through per-lane bounded
// rings, a single datapath goroutine drains them in amortized batches
// and serves extractions in tag order, with explicit backpressure and
// fault containment. See internal/engine and DESIGN.md §11.
type Engine = engine.Engine

// EngineConfig configures an Engine; the zero value is a valid 4-lane
// engine with blocking backpressure.
type EngineConfig = engine.Config

// EngineStats is the engine's counter and gauge snapshot
// (Engine.StatsSnapshot).
type EngineStats = engine.Stats

// EngineServed is one extracted entry delivered on Engine.Served.
type EngineServed = engine.Served

// EnginePolicy selects the engine's ingestion backpressure behaviour.
type EnginePolicy = engine.Policy

// Engine backpressure policies for EngineConfig.Policy.
const (
	// EngineBlock makes Submit wait for ring space (default).
	EngineBlock = engine.PolicyBlock
	// EngineDropTail sheds submissions at full rings.
	EngineDropTail = engine.PolicyDropTail
	// EngineRED applies random early detection before ring admission.
	EngineRED = engine.PolicyRED
)

// REDConfig tunes random early detection (EngineConfig.RED and the
// scheduler's FullRED policy).
type REDConfig = aqm.REDConfig

// SupervisorConfig tunes the engine's per-lane fault-domain policy
// (EngineConfig.Supervision): bounded rebuild retries with exponential
// backoff, quarantine thresholds, and ops-based episode decay and
// reinstate probing. See DESIGN.md §12.
type SupervisorConfig = supervisor.Config

// SupervisorStats is the fault-domain health snapshot embedded in
// EngineStats.Supervision: per-lane states and episode counts plus
// cumulative rebuild/quarantine/reinstate counters.
type SupervisorStats = supervisor.Stats

// Sentinel errors returned by Engine operations.
var (
	// ErrEngineNotStarted is returned by Submit/Stop before Start.
	ErrEngineNotStarted = engine.ErrNotStarted
	// ErrEngineStopped is returned by Submit once shutdown has begun.
	ErrEngineStopped = engine.ErrStopped
)

// NewEngine builds the concurrent serving runtime.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return engine.New(cfg)
}

// Pipeline is an in-order pipeline of stages used for datapath timing
// analysis (paper §III-A; Sorter.Pipeline returns the silicon insert
// pipeline).
type Pipeline = pipeline.Pipe

// PipelineStage is one stage of a Pipeline.
type PipelineStage = pipeline.Stage

// PipelineAnalysis is the timing analysis of a pipeline simulation
// (Pipeline.Simulate).
type PipelineAnalysis = pipeline.Analysis

// PipelineConfig configures a Pipeline.
type PipelineConfig struct {
	// Stages is the in-order stage list; every stage needs a positive
	// cycle occupancy.
	Stages []PipelineStage
}

// Validate checks the configuration. There are no defaults: a pipeline
// needs at least one stage with positive occupancy.
func (c *PipelineConfig) Validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("pipeline: no stages")
	}
	for i, s := range c.Stages {
		if s.Cycles <= 0 {
			return fmt.Errorf("pipeline: stage %d (%s) occupancy %d must be positive", i, s.Name, s.Cycles)
		}
	}
	return nil
}

// NewPipeline builds a pipeline for timing analysis.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return pipeline.New(cfg.Stages...)
}

// Discipline is the scheduling-discipline interface network hops
// construct per hop (see internal/schedulers).
type Discipline = schedulers.Discipline

// Departure is one served packet's timing record.
type Departure = schedulers.Departure

// RankProgram is the pluggable per-packet rank computation every
// discipline is built from (see internal/rank): Rank assigns a packet
// its service priority, OnServe advances the program's flow state.
type RankProgram = rank.Program

// Ranked is a rank program's output for one packet: the service rank
// and, for eligibility-gated disciplines, the start tag.
type Ranked = rank.Ranked

// RankStore holds ranked packets and serves them back in rank order —
// exactly (software heap, the paper's sorter through NewHWRankStore) or
// approximately (the SP-PIFO bank).
type RankStore = rank.Store

// RankItem is one stored (packet, rank, sequence) entry.
type RankItem = rank.Item

// PIFO composes a rank program with a rank store into a scheduling
// discipline (the PIFO abstraction: push-in, first-out).
type PIFO = schedulers.PIFO

// PIFOTree is the hierarchical composition: a root program schedules
// traffic classes, per-class leaf programs schedule flows within them.
type PIFOTree = schedulers.PIFOTree

// TreeClass declares one class of a PIFOTree: its leaf program, leaf
// store, and the flows it owns.
type TreeClass = schedulers.TreeClass

// NewPIFO builds a discipline from a rank program over a rank store.
func NewPIFO(prog RankProgram, store RankStore) (*PIFO, error) {
	return schedulers.NewPIFO(prog, store)
}

// NewHPFQ builds the hierarchical fair queueing tree: start-time fair
// queueing across classes at the root and across each class's flows at
// the leaves. flowWeights[c] maps global flow IDs to weights inside
// class c.
func NewHPFQ(classWeights []float64, flowWeights []map[int]float64, capacityBps float64) (*PIFOTree, error) {
	return schedulers.NewHPFQ(classWeights, flowWeights, capacityBps)
}

// Rank-program constructors (see internal/rank for the discipline
// semantics): fair-queueing programs take normalized flow weights and
// the link capacity; EDF takes per-flow relative deadlines in seconds;
// SRPT takes the flow count; LSTF takes per-flow slack budgets.
func NewSCFQProgram(weights []float64, capacityBps float64) (RankProgram, error) {
	return rank.NewSCFQ(weights, capacityBps)
}

// NewSTFQProgram builds start-time fair queueing.
func NewSTFQProgram(weights []float64, capacityBps float64) (RankProgram, error) {
	return rank.NewSTFQ(weights, capacityBps)
}

// NewWFQProgram builds WFQ over the GPS virtual clock.
func NewWFQProgram(weights []float64, capacityBps float64) (RankProgram, error) {
	return rank.NewWFQ(weights, capacityBps)
}

// NewVirtualClockProgram builds the VirtualClock discipline.
func NewVirtualClockProgram(weights []float64, capacityBps float64) (RankProgram, error) {
	return rank.NewVirtualClock(weights, capacityBps)
}

// NewEDFProgram builds earliest-deadline-first over per-flow relative
// deadlines (seconds after arrival).
func NewEDFProgram(deadlines []float64) (RankProgram, error) {
	return rank.NewEDF(deadlines)
}

// NewSRPTProgram builds shortest-remaining-processing-time over the
// given flow count.
func NewSRPTProgram(flows int) (RankProgram, error) {
	return rank.NewSRPT(flows)
}

// NewLSTFProgram builds least-slack-time-first over per-flow slack
// budgets (seconds).
func NewLSTFProgram(budgets []float64, capacityBps float64) (RankProgram, error) {
	return rank.NewLSTF(budgets, capacityBps)
}

// NewSoftRankStore returns the exact software reference store (binary
// heap, FCFS among equal ranks).
func NewSoftRankStore() *rank.SoftStore { return rank.NewSoftStore() }

// MinTagQueue is the Table I sorting-backend interface (see
// internal/pqueue): any structure that stores integer tags and serves
// the minimum.
type MinTagQueue = pqueue.MinTagQueue

// DynamicQueue is the optional capability interface for backends that
// support charged in-place dynamic updates — Remove (timer
// cancellation) and Rerank (flow re-weighting). Probe for it with a
// type assertion: the paper's tree, the sharded sorter, and every
// software baseline implement it; backends whose structure cannot
// support exact removal (TCAM, SP-PIFO) simply don't.
type DynamicQueue = pqueue.DynamicQueue

// NewHWRankStore quantizes ranks onto any MinTagQueue — the seam that
// runs a rank program over the paper's integer-tag sorting hardware.
func NewHWRankStore(q MinTagQueue, granularity float64, tagRange int) (*rank.HWStore, error) {
	return rank.NewHWStore(q, granularity, tagRange)
}

// NewSPPIFO builds the SP-PIFO approximation backend: k strict-priority
// FIFO queues with push-up/push-down bound adaptation in place of an
// exact sorter.
func NewSPPIFO(k, tagRange int) (*pqueue.SPPIFO, error) {
	return pqueue.NewSPPIFO(k, tagRange)
}

// NewMultiBitTreeQueue returns the paper's multi-bit search tree as a
// MinTagQueue — the exact hardware backend for NewHWRankStore.
func NewMultiBitTreeQueue(tagRange int) (MinTagQueue, error) {
	return pqueue.NewMultiBitTree(tagRange)
}

// Hop is one output link on a network Path.
type Hop = network.Hop

// Path is a chain of hops all flows traverse in order; Run pushes an
// arrival trace through every hop and reports end-to-end delays
// (Parekh–Gallager bounds via WFQEndToEndBound in internal/network).
type Path = network.Path

// PathResult holds a Path run's per-hop departures and end-to-end
// timings.
type PathResult = network.Result

// PathConfig configures a Path.
type PathConfig struct {
	// Hops is the traversal order; every hop needs a positive capacity
	// and a discipline factory.
	Hops []Hop
}

// Validate checks the configuration. There are no defaults: a path
// needs at least one fully-specified hop.
func (c *PathConfig) Validate() error {
	if len(c.Hops) == 0 {
		return fmt.Errorf("network: no hops")
	}
	for i, h := range c.Hops {
		if h.CapacityBps <= 0 {
			return fmt.Errorf("network: hop %d (%s) capacity %v must be positive", i, h.Name, h.CapacityBps)
		}
		if h.NewDiscipline == nil {
			return fmt.Errorf("network: hop %d (%s) has no discipline factory", i, h.Name)
		}
	}
	return nil
}

// NewPath builds a multi-hop network path.
func NewPath(cfg PathConfig) (*Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return network.NewPath(cfg.Hops...)
}

// Packet is one IP packet traversing the scheduler.
type Packet = packet.Packet

// WriteArrivals writes an arrival trace as CSV
// (id,flow,size_bytes,arrival_s).
func WriteArrivals(w io.Writer, pkts []Packet) error {
	return trace.WriteArrivals(w, pkts)
}

// ReadArrivals reads an arrival trace written by WriteArrivals.
func ReadArrivals(r io.Reader) ([]Packet, error) {
	return trace.ReadArrivals(r)
}

// WriteDepartures writes departure records as CSV
// (id,flow,size_bytes,arrival_s,start_s,finish_s).
func WriteDepartures(w io.Writer, deps []Departure) error {
	return trace.WriteDepartures(w, deps)
}

// ReadDepartures reads departure records written by WriteDepartures.
func ReadDepartures(r io.Reader) ([]Departure, error) {
	return trace.ReadDepartures(r)
}
