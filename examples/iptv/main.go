// IPTV example: service-level differentiation across traffic classes —
// the "next generation IP services" the paper's introduction motivates.
// An IPTV head-end shares a link between an HD stream, an SD stream,
// VoIP, and best-effort data, each with a bandwidth weight; the full
// hardware scheduler datapath (tag computation → sort/retrieve circuit →
// packet buffer) delivers the configured shares and bounded delays.
package main

import (
	"fmt"
	"log"

	"wfqsort"
	"wfqsort/internal/metrics"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const capacity = 10e6 // 10 Mb/s subscriber link

	classes := []struct {
		name   string
		weight float64
	}{
		{"HD video", 0.50},
		{"SD video", 0.25},
		{"VoIP", 0.05},
		{"best effort", 0.20},
	}
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = c.weight
	}

	// Each class offers more than its share, so the weights decide.
	hd, err := traffic.NewCBR(0, 8e6, 1350, 1500, 0)
	if err != nil {
		return err
	}
	sd, err := traffic.NewCBR(1, 4e6, 1350, 800, 0)
	if err != nil {
		return err
	}
	voip, err := traffic.NewCBR(2, 64e3, 80, 400, 0)
	if err != nil {
		return err
	}
	data, err := traffic.NewPoisson(3, 900, traffic.IMIX{}, 1500, 11)
	if err != nil {
		return err
	}
	pkts, err := traffic.Merge(hd, sd, voip, data)
	if err != nil {
		return err
	}

	sched, err := wfqsort.NewScheduler(wfqsort.SchedulerConfig{
		Weights:     weights,
		CapacityBps: capacity,
	})
	if err != nil {
		return err
	}
	res, err := sched.Run(pkts)
	if err != nil {
		return err
	}

	// Shares during the contended window.
	horizon := res.Departures[len(res.Departures)-1].Finish * 0.5
	shares, err := metrics.ThroughputShares(res.Departures, len(weights), horizon)
	if err != nil {
		return err
	}
	delays, err := metrics.QueueingDelays(res.Departures, len(weights))
	if err != nil {
		return err
	}

	fmt.Printf("IPTV head-end on a %.0f Mb/s link — %d packets through the hardware datapath\n\n",
		capacity/1e6, len(res.Departures))
	fmt.Printf("%-12s %7s %9s %12s %12s\n", "class", "weight", "share", "mean delay", "p99 delay")
	for i, c := range classes {
		d := metrics.Summarize(delays[i])
		fmt.Printf("%-12s %6.0f%% %8.1f%% %9.2f ms %9.2f ms\n",
			c.name, c.weight*100, shares[i]*100, d.Mean*1e3, d.P99*1e3)
	}
	jain, err := metrics.JainIndex(shares, weights)
	if err != nil {
		return err
	}
	fmt.Printf("\nweighted-fairness (Jain) index: %.3f (1.0 = perfect)\n", jain)
	fmt.Printf("sorter fixed-time check: worst tree search %d node reads; %d sections reclaimed\n",
		res.Sorter.TreeMaxDepth, res.SectionsReclaimed)
	return nil
}
