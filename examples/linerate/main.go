// Line-rate example: the paper's §IV headline — the circuit sustains one
// packet per four-cycle window, so at the implemented 143.2 MHz clock it
// schedules 35.8 million packets per second, which at the paper's
// conservative 140-byte average packet is a 40 Gb/s line. This example
// prints the throughput model across clock frequencies and packet sizes
// and cross-checks the 4-cycle window on a live datapath run.
package main

import (
	"fmt"
	"log"

	"wfqsort"
	"wfqsort/internal/sharded"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Throughput = clock / 4-cycle window (paper §IV)")
	fmt.Printf("%-18s %10s %26s\n", "clock", "Mpps", "line rate @140-byte packets")
	for _, clk := range []float64{100e6, 143.2e6, 200e6, 400e6} {
		sched, err := wfqsort.NewScheduler(wfqsort.SchedulerConfig{
			Weights:     []float64{1},
			CapacityBps: 40e9,
			ClockHz:     clk,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%13.1f MHz %10.1f %21.1f Gb/s\n",
			clk/1e6, sched.SupportedPPS()/1e6, sched.SupportedLineRate(140)/1e9)
	}

	fmt.Println("\nscaling with mean packet size at the implemented 143.2 MHz:")
	sched, err := wfqsort.NewScheduler(wfqsort.SchedulerConfig{
		Weights:     []float64{0.25, 0.25, 0.25, 0.25},
		CapacityBps: 40e9,
	})
	if err != nil {
		return err
	}
	for _, size := range []float64{64, 140, 340, 576, 1500} {
		gbps := sched.SupportedLineRate(size) / 1e9
		marker := ""
		if size == 140 {
			marker = "  ← paper's operating point (40 Gb/s)"
		}
		fmt.Printf("  %4.0f bytes: %6.1f Gb/s%s\n", size, gbps, marker)
	}

	// Live cross-check: run a VoIP-mix burst through the datapath and
	// verify the fixed window accounting.
	var sources []traffic.Source
	for f := 0; f < 4; f++ {
		src, err := traffic.NewPoisson(f, 2000, traffic.VoIPMix{}, 500, int64(f+1))
		if err != nil {
			return err
		}
		sources = append(sources, src)
	}
	pkts, err := traffic.Merge(sources...)
	if err != nil {
		return err
	}
	res, err := sched.Run(pkts)
	if err != nil {
		return err
	}
	fmt.Printf("\nlive run: %d packets, %d sorter windows, ≤%d-read tree searches\n",
		len(res.Departures), res.Windows, res.Sorter.TreeMaxDepth)
	perPacket := float64(res.Windows) / float64(len(res.Departures))
	fmt.Printf("windows per packet: %.2f (insert + extract; the silicon overlaps both in one)\n", perPacket)

	return shardedScaleOut()
}

// shardedScaleOut shows how lane-parallel sharding multiplies the
// single-circuit line rate: N circuits each own an interleaved slice of
// the tag space, inserts land on their lanes concurrently, and a
// log₂(N)-deep select tree serves the global minimum. The hardware wall
// clock for a batch is the busiest lane, so the model speedup is
// sum-of-lane-cycles over max-lane-cycles.
func shardedScaleOut() error {
	fmt.Println("\nsharded scale-out at 143.2 MHz (cycle-accurate lane model):")
	fmt.Printf("%8s %16s %16s %12s\n", "lanes", "model speedup", "modeled Mpps", "line rate")
	const batches, batch = 64, 64
	for _, lanes := range []int{1, 2, 4, 8} {
		s, err := sharded.New(sharded.Config{Lanes: lanes, LaneCapacity: 1024})
		if err != nil {
			return err
		}
		gen, err := traffic.NewTagGen(traffic.ProfileBell, 7)
		if err != nil {
			return err
		}
		served := 0
		for b := 0; b < batches; b++ {
			reqs := make([]sharded.Request, batch)
			for i := range reqs {
				reqs[i] = sharded.Request{Tag: gen.Sample(0, 4095), Payload: served + i}
			}
			if _, err := s.InsertBatch(reqs); err != nil {
				return err
			}
			for i := 0; i < batch; i++ {
				if _, err := s.ExtractMin(); err != nil {
					return err
				}
				served++
			}
		}
		st := s.StatsSnapshot()
		// One lane sustains clock/4 packets/s; N lanes sustain the same
		// stream in 1/speedup of the cycles.
		mpps := 143.2e6 / 4 * st.ModelSpeedup() / 1e6
		fmt.Printf("%8d %15.2fx %16.1f %9.1f Gb/s\n",
			lanes, st.ModelSpeedup(), mpps, mpps*1e6*140*8/1e9)
	}
	fmt.Println("(speedup = Σ lane cycles / max lane cycles; extracts stay serial through the select tree)")
	return nil
}
