// Event-simulator example: the sorter's eager mode is a general-purpose
// priority structure with fixed-time operations — here it drives a small
// discrete-event simulation (an M/M/1-ish job queue), the same pattern a
// traffic-manager firmware would use for timer wheels and token-bucket
// refresh events.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wfqsort"
)

// Event kinds encoded in the payload alongside a small index.
const (
	evArrival = iota
	evDeparture
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 12-bit tag space = the simulation clock (time units); eager mode
	// accepts events in any order.
	events, err := wfqsort.NewSorter(wfqsort.SorterConfig{
		Capacity: 256,
		Mode:     wfqsort.ModeEager,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))

	// Schedule 40 job arrivals at random times.
	const jobs = 40
	for j := 0; j < jobs; j++ {
		t := rng.Intn(2000)
		if err := events.Insert(t, evArrival<<8|j); err != nil {
			return err
		}
	}

	var (
		queueLen   int
		busyUntil  int
		served     int
		totalWait  int
		maxQueue   int
		arrivalsAt = map[int]int{}
	)
	for events.Len() > 0 {
		e, err := events.ExtractMin()
		if err != nil {
			return err
		}
		now := e.Tag
		kind, id := e.Payload>>8, e.Payload&0xFF
		switch kind {
		case evArrival:
			queueLen++
			if queueLen > maxQueue {
				maxQueue = queueLen
			}
			arrivalsAt[id] = now
			// If the server is idle, start service now; otherwise the
			// departure chain is already scheduled.
			start := now
			if busyUntil > now {
				start = busyUntil
			}
			serviceTime := 20 + rng.Intn(60)
			busyUntil = start + serviceTime
			if busyUntil > 4095 {
				busyUntil = 4095
			}
			if err := events.Insert(busyUntil, evDeparture<<8|id); err != nil {
				return err
			}
		case evDeparture:
			queueLen--
			served++
			totalWait += now - arrivalsAt[id]
		}
	}
	fmt.Printf("discrete-event run: %d jobs served, mean sojourn %.1f time units, peak queue %d\n",
		served, float64(totalWait)/float64(served), maxQueue)
	st := events.StatsSnapshot()
	fmt.Printf("event-queue cost: every schedule was ≤%d node reads + one 4-cycle window (fixed time)\n",
		st.TreeMaxDepth)
	return nil
}
