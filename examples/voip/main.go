// VoIP example: the paper's motivating scenario — a voice flow sharing a
// link with bulk data. Under WFQ the voice flow's worst-case delay is
// bounded within one maximum packet transmission time of the ideal GPS
// fluid scheduler; under deficit round robin and FIFO it is not.
package main

import (
	"fmt"
	"log"

	"wfqsort/internal/gps"
	"wfqsort/internal/metrics"
	"wfqsort/internal/schedulers"
	"wfqsort/internal/traffic"
	"wfqsort/internal/wfq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const capacity = 2e6 // 2 Mb/s access link

	// One G.711-like voice call: 80-byte packets every 10 ms.
	voice, err := traffic.NewCBR(0, 64e3, 80, 300, 0)
	if err != nil {
		return err
	}
	// Three greedy bulk-data flows with 1500-byte packets.
	var sources []traffic.Source
	sources = append(sources, voice)
	for f := 1; f <= 3; f++ {
		bulk, err := traffic.NewCBR(f, 1.2e6, 1500, 300, 0)
		if err != nil {
			return err
		}
		sources = append(sources, bulk)
	}
	pkts, err := traffic.Merge(sources...)
	if err != nil {
		return err
	}
	weights := []float64{0.1, 0.3, 0.3, 0.3}

	ref, err := gps.Simulate(pkts, weights, capacity)
	if err != nil {
		return err
	}
	bound := wfq.DelayBound(1500*8, capacity)
	fmt.Printf("VoIP flow (weight 0.1) vs 3 greedy bulk flows on a %.0f Mb/s link\n", capacity/1e6)
	fmt.Printf("GPS delay bound for WFQ: +%.2f ms\n\n", bound*1e3)

	wfqD, err := schedulers.NewWFQ(weights, capacity)
	if err != nil {
		return err
	}
	drr, err := schedulers.NewDRR([]int{150, 450, 450, 450})
	if err != nil {
		return err
	}
	for _, d := range []schedulers.Discipline{wfqD, drr, schedulers.NewFIFO()} {
		deps, err := schedulers.Run(pkts, d, capacity)
		if err != nil {
			return err
		}
		rel, err := metrics.GPSRelativeDelays(deps, ref.Finish, len(weights))
		if err != nil {
			return err
		}
		voiceLag := metrics.Summarize(rel[0])
		qd, err := metrics.QueueingDelays(deps, len(weights))
		if err != nil {
			return err
		}
		voiceDelay := metrics.Summarize(qd[0])
		fmt.Printf("%-5s  voice delay mean %6.2f ms  max %6.2f ms  |  GPS lag max %6.2f ms  bounded=%v\n",
			d.Name(), voiceDelay.Mean*1e3, voiceDelay.Max*1e3,
			voiceLag.Max*1e3, voiceLag.Max <= bound+1e-9)
	}
	fmt.Println("\nWFQ keeps the conversation interactive regardless of the bulk backlog;")
	fmt.Println("the round-robin frame and the FIFO queue do not (paper §I-B).")
	return nil
}
