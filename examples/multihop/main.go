// Multihop example: the end-to-end QoS promise of the paper's
// introduction — a shaped voice call crossing three congested WFQ hops
// stays within the Parekh–Gallager network-calculus bound, while the
// same call over FIFO hops is at the mercy of every burst on the path.
package main

import (
	"fmt"
	"log"

	"wfqsort/internal/metrics"
	"wfqsort/internal/network"
	"wfqsort/internal/police"
	"wfqsort/internal/schedulers"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		capacity = 2e6
		hops     = 3
	)
	bucket := police.Bucket{RateBps: 64e3, BurstBits: 4000}
	voice, err := traffic.NewCBR(0, 64e3, 160, 300, 0)
	if err != nil {
		return err
	}
	bulk1, err := traffic.NewOnOff(1, 1500, 0.05, 0.04, traffic.FixedSize(1500), 600, 1)
	if err != nil {
		return err
	}
	bulk2, err := traffic.NewPoisson(2, 100, traffic.IMIX{}, 500, 2)
	if err != nil {
		return err
	}
	pkts, err := traffic.Merge(voice, bulk1, bulk2)
	if err != nil {
		return err
	}
	shaped, err := police.ShapeTrace(pkts, map[int]police.Bucket{0: bucket})
	if err != nil {
		return err
	}

	weights := []float64{0.1, 0.6, 0.3}
	caps := make([]float64, hops)
	for h := range caps {
		caps[h] = capacity
	}
	bound, err := network.WFQEndToEndBound(bucket.BurstBits, 160*8, weights[0]*capacity, caps, 1500*8)
	if err != nil {
		return err
	}
	fmt.Printf("voice (64 kb/s, 4 kbit burst) across %d congested 2 Mb/s hops\n", hops)
	fmt.Printf("Parekh–Gallager end-to-end bound with 10%% reservations: %.1f ms\n\n", bound*1e3)

	for _, tc := range []struct {
		name string
		mk   func() (schedulers.Discipline, error)
	}{
		{"WFQ", func() (schedulers.Discipline, error) { return schedulers.NewWFQ(weights, capacity) }},
		{"FIFO", func() (schedulers.Discipline, error) { return schedulers.NewFIFO(), nil }},
	} {
		var hopList []network.Hop
		for h := 0; h < hops; h++ {
			hopList = append(hopList, network.Hop{
				Name:          tc.name,
				CapacityBps:   capacity,
				NewDiscipline: tc.mk,
			})
		}
		path, err := network.NewPath(hopList...)
		if err != nil {
			return err
		}
		res, err := path.Run(shaped)
		if err != nil {
			return err
		}
		var delays []float64
		for _, p := range shaped {
			if p.Flow == 0 {
				delays = append(delays, res.EndToEnd[p.ID])
			}
		}
		st := metrics.Summarize(delays)
		fmt.Printf("%-5s end-to-end: mean %6.2f ms  p99 %6.2f ms  max %6.2f ms  within bound: %v\n",
			tc.name, st.Mean*1e3, st.P99*1e3, st.Max*1e3, st.Max <= bound)
	}
	return nil
}
