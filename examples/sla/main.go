// SLA example: the full edge-router conditioning story the paper's
// conclusion points at ("traffic management ... to enable service level
// agreements and service differentiation"): subscriber flows are shaped
// to their contracted token buckets at ingress, then scheduled by the
// hardware WFQ datapath. With conforming arrivals, each flow's delay is
// bounded by its bucket burst over its reserved rate plus one packet
// time — the Parekh–Gallager SLA calculus made executable.
package main

import (
	"fmt"
	"log"

	"wfqsort"
	"wfqsort/internal/metrics"
	"wfqsort/internal/police"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const capacity = 10e6 // 10 Mb/s uplink

	// Three subscribers with contracted (rate, burst) SLAs; the offered
	// traffic is bursty and would violate the contracts unshaped.
	contracts := []struct {
		name   string
		bucket police.Bucket
		weight float64
	}{
		{"gold", police.Bucket{RateBps: 4e6, BurstBits: 60e3}, 0.4},
		{"silver", police.Bucket{RateBps: 2e6, BurstBits: 30e3}, 0.2},
		{"bronze", police.Bucket{RateBps: 1e6, BurstBits: 15e3}, 0.1},
	}
	weights := make([]float64, len(contracts))
	buckets := make(map[int]police.Bucket, len(contracts))
	var srcs []traffic.Source
	for f, c := range contracts {
		weights[f] = c.weight
		buckets[f] = c.bucket
		// Offered load: bursts at 2× the contracted rate.
		src, err := traffic.NewOnOff(f, 2*c.bucket.RateBps/(1000*8), 0.005, 0.005,
			traffic.FixedSize(1000), 400, int64(f+1))
		if err != nil {
			return err
		}
		srcs = append(srcs, src)
	}
	offered, err := traffic.Merge(srcs...)
	if err != nil {
		return err
	}

	// Ingress conditioning: shape each flow to its contract.
	shaped, err := police.ShapeTrace(offered, buckets)
	if err != nil {
		return err
	}

	sched, err := wfqsort.NewScheduler(wfqsort.SchedulerConfig{
		Weights:     weights,
		CapacityBps: capacity,
	})
	if err != nil {
		return err
	}
	res, err := sched.Run(shaped)
	if err != nil {
		return err
	}
	delays, err := metrics.QueueingDelays(res.Departures, len(contracts))
	if err != nil {
		return err
	}

	fmt.Printf("SLA run: %d offered packets shaped to contract, scheduled at %.0f Mb/s\n\n",
		len(offered), capacity/1e6)
	fmt.Printf("%-8s %12s %12s %14s %14s %14s\n",
		"class", "rate (Mb/s)", "burst (kb)", "delay bound", "measured max", "within")
	for f, c := range contracts {
		// Parekh–Gallager single-node bound for a (r, b) flow with
		// reservation φC ≥ r: D ≤ b/(φC) + Lmax/C.
		bound := c.bucket.BurstBits/(c.weight*capacity) + 1000*8/capacity
		d := metrics.Summarize(delays[f])
		fmt.Printf("%-8s %12.1f %12.1f %11.2f ms %11.2f ms %10v\n",
			c.name, c.bucket.RateBps/1e6, c.bucket.BurstBits/1e3,
			bound*1e3, d.Max*1e3, d.Max <= bound)
	}
	fmt.Println("\nShaping at ingress + WFQ reservation at the link = a per-class delay SLA.")
	return nil
}
