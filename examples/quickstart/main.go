// Quickstart: use the tag sort/retrieve circuit as a fixed-time priority
// structure — insert finishing tags with packet pointers, always extract
// the smallest.
package main

import (
	"fmt"
	"log"

	"wfqsort"
)

func main() {
	// The zero-value geometry is the paper's silicon: a 3-level
	// multi-bit tree over 12-bit tags. Capacity sizes the linked-list
	// tag storage memory.
	sorter, err := wfqsort.NewSorter(wfqsort.SorterConfig{Capacity: 1024})
	if err != nil {
		log.Fatal(err)
	}

	// Insert (tag, packet pointer) pairs in any order. Duplicate tags
	// are legal and served first-come-first-served.
	for _, in := range []struct{ tag, ptr int }{
		{310, 100}, {42, 101}, {2981, 102}, {42, 103}, {7, 104},
	} {
		if err := sorter.Insert(in.tag, in.ptr); err != nil {
			log.Fatal(err)
		}
	}

	// The minimum is always available instantly: the head of the tag
	// store is register-cached (the "sort model" of paper §II-C).
	if head, ok := sorter.PeekMin(); ok {
		fmt.Printf("next to serve: tag %d → packet %d\n", head.Tag, head.Payload)
	}

	// Service drains in sorted order, four clock cycles per operation.
	fmt.Println("service order:")
	for sorter.Len() > 0 {
		e, err := sorter.ExtractMin()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tag %4d → packet %d\n", e.Tag, e.Payload)
	}

	// Every search through the tree took at most 3 sequential node
	// reads — the fixed-time guarantee.
	st := sorter.StatsSnapshot()
	fmt.Printf("worst tree search depth: %d node reads (%d searches)\n",
		st.TreeMaxDepth, st.TreeSearches)
}
