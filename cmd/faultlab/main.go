// Command faultlab runs fault-injection campaigns against the sort/
// retrieve datapath and measures how well the integrity-audit and
// self-repair machinery copes:
//
//	faultlab -experiment campaign  — one seeded campaign through the
//	                                 full scheduler under a recovery
//	                                 policy, with a reproducibility
//	                                 check (same seed ⇒ same events,
//	                                 same departures)
//	faultlab -experiment coverage  — random single-fault trials across
//	                                 every memory × fault kind × sorter
//	                                 mode: detection coverage, silent
//	                                 corruption rate, repair rate
//	faultlab -experiment latency   — recovery latency in cycles across
//	                                 the paper's memory technologies
//	                                 (SDR, QDRII, RLDRAM)
//
// Campaigns are fully deterministic given -seed: a failing run can be
// replayed and bisected fault by fault.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"wfqsort/internal/core"
	"wfqsort/internal/fault"
	"wfqsort/internal/hwsim"
	"wfqsort/internal/membus"
	"wfqsort/internal/packet"
	"wfqsort/internal/scheduler"
	"wfqsort/internal/taglist"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultlab:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "campaign", "campaign, coverage, or latency")
	seed := flag.Int64("seed", 1, "campaign seed (same seed ⇒ same faults, same outcome)")
	nfaults := flag.Int("faults", 3, "random faults per campaign (campaign experiment)")
	trials := flag.Int("trials", 40, "trials per memory × kind cell (coverage experiment)")
	packets := flag.Int("packets", 300, "packets per flow (scheduler experiments)")
	policy := flag.String("policy", "rebuild", "corruption recovery policy: abort, rebuild, or flush")
	mem := flag.String("mem", "sdr", "tag-store memory technology: sdr, qdr2, or rldram")
	audit := flag.Int("audit", 64, "audit every N departures (0 disables the background scrub)")
	flag.Parse()

	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	tech, err := parseTech(*mem)
	if err != nil {
		return err
	}

	switch *experiment {
	case "campaign":
		return campaignExperiment(*seed, *nfaults, *packets, pol, tech, *audit)
	case "coverage":
		return coverageExperiment(*seed, *trials)
	case "latency":
		return latencyExperiment(*seed, *packets, *audit)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

func parsePolicy(s string) (scheduler.CorruptPolicy, error) {
	switch s {
	case "abort":
		return scheduler.CorruptAbort, nil
	case "rebuild":
		return scheduler.CorruptRebuild, nil
	case "flush":
		return scheduler.CorruptFlush, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseTech(s string) (taglist.MemTech, error) {
	switch s {
	case "sdr":
		return taglist.TechSDR, nil
	case "qdr2":
		return taglist.TechQDRII, nil
	case "rldram":
		return taglist.TechRLDRAM, nil
	default:
		return 0, fmt.Errorf("unknown memory technology %q", s)
	}
}

// schedulerWorkload builds a deterministic IMIX Poisson trace across
// eight flows at ~90% load of a 1 Gb/s link.
func schedulerWorkload(packets int, seed int64) ([]float64, float64, []packet.Packet, error) {
	weights := []float64{4, 3, 2, 2, 1, 1, 1, 1}
	capacity := 1e9
	const meanBits = 340 * 8 // IMIX mean packet
	perFlow := 0.9 * capacity / (float64(len(weights)) * meanBits)
	srcs := make([]traffic.Source, len(weights))
	for f := range weights {
		p, err := traffic.NewPoisson(f, perFlow, traffic.IMIX{}, packets, seed+int64(f))
		if err != nil {
			return nil, 0, nil, err
		}
		srcs[f] = p
	}
	arr, err := traffic.Merge(srcs...)
	if err != nil {
		return nil, 0, nil, err
	}
	return weights, capacity, arr, nil
}

// discoverMems builds a throwaway datapath to learn the targetable
// memory names for the given sorter capacity.
func discoverMems(capacity int, mode core.Mode) ([]string, error) {
	clock := &hwsim.Clock{}
	fab := membus.New(clock)
	inj := fault.NewInjector(fault.Campaign{}, clock)
	inj.Attach(fab)
	if _, err := core.New(core.Config{Capacity: capacity, Mode: mode, Fabric: fab, Clock: clock}); err != nil {
		return nil, err
	}
	return inj.Wrapped(), nil
}

// randomCampaign draws n faults across the given memories: random
// kinds, seed-resolved addresses and masks, access-count triggers
// spread over the run.
func randomCampaign(seed int64, n int, mems []string) fault.Campaign {
	rng := rand.New(rand.NewSource(seed))
	kinds := []fault.Kind{fault.BitFlip, fault.StuckAt, fault.ReadError}
	c := fault.Campaign{Seed: seed}
	for i := 0; i < n; i++ {
		f := fault.Fault{
			Mem:  mems[rng.Intn(len(mems))],
			Kind: kinds[rng.Intn(len(kinds))],
			Addr: -1,
			At:   fault.Trigger{Access: uint64(50 + rng.Intn(400))},
		}
		if f.Kind == fault.StuckAt && rng.Intn(2) == 1 {
			f.Stuck = ^uint64(0)
		}
		c.Faults = append(c.Faults, f)
	}
	return c
}

type campaignOutcome struct {
	events     []string
	departures []int
	res        *scheduler.Result
	err        error
	remaining  int
}

func runCampaign(camp fault.Campaign, packets, sorterCap int, pol scheduler.CorruptPolicy,
	tech taglist.MemTech, audit int, seed int64) (*campaignOutcome, error) {
	weights, capacity, arr, err := schedulerWorkload(packets, seed)
	if err != nil {
		return nil, err
	}
	clock := &hwsim.Clock{}
	fab := membus.New(clock)
	inj := fault.NewInjector(camp, clock)
	inj.Attach(fab)
	sched, err := scheduler.New(scheduler.Config{
		Fabric:         fab,
		Weights:        weights,
		CapacityBps:    capacity,
		MemTech:        tech,
		SorterCapacity: sorterCap,
		OnCorrupt:      pol,
		AuditEvery:     audit,
		Clock:          clock,
		OnFull:         scheduler.FullTailDrop,
	})
	if err != nil {
		return nil, err
	}
	out := &campaignOutcome{}
	out.res, out.err = sched.Run(arr)
	for _, ev := range inj.Events() {
		out.events = append(out.events, ev.String())
	}
	out.remaining = inj.Remaining()
	if out.res != nil {
		for _, d := range out.res.Departures {
			out.departures = append(out.departures, d.Packet.ID)
		}
	}
	return out, nil
}

func campaignExperiment(seed int64, nfaults, packets int, pol scheduler.CorruptPolicy,
	tech taglist.MemTech, audit int) error {
	mems, err := discoverMems(1024, core.ModeHardware)
	if err != nil {
		return err
	}
	camp := randomCampaign(seed, nfaults, mems)
	fmt.Println(camp)
	fmt.Printf("policy %v, %v tag store, audit every %d departures\n\n", pol, tech, audit)

	out, err := runCampaign(camp, packets, 1024, pol, tech, audit, seed)
	if err != nil {
		return err
	}
	fmt.Printf("fired %d/%d faults:\n", len(out.events), len(camp.Faults))
	for _, ev := range out.events {
		fmt.Println("  " + ev)
	}
	if out.err != nil {
		fmt.Printf("\nrun aborted: %v\n", out.err)
		fmt.Printf("errors.Is(err, core.ErrCorrupt) = %v\n", errors.Is(out.err, core.ErrCorrupt))
	} else {
		r := out.res
		total := 0
		for range r.Departures {
			total++
		}
		fmt.Printf("\nserved %d, lost %d, dropped %d (arrivals %d)\n",
			total, r.Lost, r.Dropped, len(r.ExactTags))
		fmt.Printf("detections %d, recoveries %d\n", r.Detections, len(r.Recoveries))
		for _, rec := range r.Recoveries {
			fmt.Printf("  %s at cycle %d, repaired by cycle %d (%d cycles): %s\n",
				rec.Action, rec.Detected, rec.Repaired, rec.Repaired-rec.Detected, rec.Trigger)
		}
		if got, want := total+r.Lost+r.Dropped, len(r.ExactTags); got == want {
			fmt.Printf("conservation: OK (%d served + %d lost + %d dropped = %d arrivals)\n",
				total, r.Lost, r.Dropped, want)
		} else {
			fmt.Printf("conservation: FAIL (%d accounted, %d arrivals)\n", got, want)
		}
	}

	// Reproducibility: the same campaign against the same workload must
	// fire the same faults and produce the same outcome.
	again, err := runCampaign(camp, packets, 1024, pol, tech, audit, seed)
	if err != nil {
		return err
	}
	same := fmt.Sprint(out.events) == fmt.Sprint(again.events) &&
		fmt.Sprint(out.departures) == fmt.Sprint(again.departures) &&
		fmt.Sprint(out.err) == fmt.Sprint(again.err)
	fmt.Printf("\nreproducible: %v\n", same)
	if !same {
		return fmt.Errorf("campaign is not reproducible")
	}
	return nil
}

// --- coverage experiment ---------------------------------------------

type tally struct {
	fired, detected, harmless, silent int
	repaired, unrecoverable           int
}

func (t tally) coverage() string {
	harmful := t.fired - t.harmless
	if harmful <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(t.detected)/float64(harmful))
}

// coverageTrial drives a sorter through a random workload with one
// scheduled fault, then classifies the outcome:
//
//	harmless      — nothing detected AND a full drain matches the oracle
//	detected      — an operation error or the audit flagged it
//	silent        — undetected but the drain is wrong (missed corruption)
//	repaired      — detected, and Rebuild restored a clean, correct sorter
//	unrecoverable — detected, but the damage hit the authoritative copy
func coverageTrial(mode core.Mode, target string, kind fault.Kind, seed int64, t *tally) error {
	const capacity = 256
	camp := fault.Campaign{Seed: seed, Faults: []fault.Fault{{
		Mem: target, Kind: kind, Addr: -1,
		At: fault.Trigger{Access: 60},
	}}}
	if kind == fault.StuckAt && seed%2 == 1 {
		camp.Faults[0].Stuck = ^uint64(0)
	}
	clock := &hwsim.Clock{}
	fab := membus.New(clock)
	inj := fault.NewInjector(camp, clock)
	inj.Attach(fab)
	s, err := core.New(core.Config{Capacity: capacity, Mode: mode, Fabric: fab, Clock: clock})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5f))
	var live []int // oracle: multiset of live tags
	base, payload := 0, 0
	detected := false
	for i := 0; i < 150 && !detected; i++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			if len(live) == capacity {
				continue
			}
			tag := base
			if base += rng.Intn(3); base >= s.TagRange() {
				base = s.TagRange() - 1
			}
			if err := s.Insert(tag, payload%capacity); err != nil {
				if errors.Is(err, core.ErrCorrupt) {
					detected = true
					break
				}
				return err
			}
			payload++
			live = append(live, tag)
		} else {
			e, err := s.ExtractMin()
			if err != nil {
				if errors.Is(err, core.ErrCorrupt) {
					detected = true
					break
				}
				return err
			}
			sort.Ints(live)
			if e.Tag != live[0] {
				// Wrong minimum with no error: silent corruption caught
				// by the oracle, not the circuit.
				if len(inj.Events()) > 0 {
					t.fired++
					t.silent++
					return nil
				}
				return fmt.Errorf("wrong minimum with no fault fired: got %d want %d", e.Tag, live[0])
			}
			live = live[1:]
		}
	}
	if len(inj.Events()) == 0 {
		return nil // fault never fired (memory too cold): not a trial
	}
	t.fired++
	if !detected {
		detected = !s.Audit().Clean()
	}
	if !detected {
		// Nothing noticed: drain and let the oracle judge.
		got, err := s.Drain()
		if err != nil {
			if errors.Is(err, core.ErrCorrupt) {
				t.detected++ // the drain itself tripped over it
				return nil
			}
			return err
		}
		if drainMatches(got, live) {
			t.harmless++
		} else {
			t.silent++
		}
		return nil
	}
	t.detected++
	if err := s.Rebuild(); err != nil {
		t.unrecoverable++
		return nil
	}
	if !s.Audit().Clean() {
		t.unrecoverable++
		return nil
	}
	got, err := s.Drain()
	if err == nil && drainMatches(got, live) {
		t.repaired++
	} else {
		// The rebuild succeeded structurally but the tag data itself was
		// damaged (tag-store corruption survives into the drain).
		t.unrecoverable++
	}
	return nil
}

func drainMatches(got []taglist.Entry, live []int) bool {
	if len(got) != len(live) {
		return false
	}
	want := append([]int(nil), live...)
	sort.Ints(want)
	for i, e := range got {
		if e.Tag != want[i] {
			return false
		}
	}
	return true
}

func coverageExperiment(seed int64, trials int) error {
	mems, err := discoverMems(256, core.ModeEager)
	if err != nil {
		return err
	}
	kinds := []fault.Kind{fault.BitFlip, fault.StuckAt}
	for _, mode := range []core.Mode{core.ModeEager, core.ModeHardware} {
		name := "eager"
		if mode == core.ModeHardware {
			name = "hardware"
		}
		fmt.Printf("--- %s mode, %d trials per cell ---\n", name, trials)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "memory\tkind\tfired\tdetected\tharmless\tsilent\trepaired\tunrecov\tcoverage")
		for _, mem := range mems {
			for _, kind := range kinds {
				var t tally
				for i := 0; i < trials; i++ {
					trialSeed := seed + int64(i)*7919
					if err := coverageTrial(mode, mem, kind, trialSeed, &t); err != nil {
						return fmt.Errorf("%s %v trial %d: %w", mem, kind, i, err)
					}
				}
				fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
					mem, kind, t.fired, t.detected, t.harmless, t.silent,
					t.repaired, t.unrecoverable, t.coverage())
			}
		}
		w.Flush()
		fmt.Println()
	}
	fmt.Println("coverage = detected / (fired - harmless); tag-storage damage is")
	fmt.Println("detectable but unrecoverable by design (the tag store is the")
	fmt.Println("authoritative copy — rebuilds restore the tree and table from it).")
	return nil
}

// --- latency experiment ----------------------------------------------

func latencyExperiment(seed int64, packets, audit int) error {
	techs := []struct {
		name string
		tech taglist.MemTech
	}{
		{"SDR", taglist.TechSDR},
		{"QDRII", taglist.TechQDRII},
		{"RLDRAM", taglist.TechRLDRAM},
	}
	mems, err := discoverMems(1024, core.ModeHardware)
	if err != nil {
		return err
	}
	// One tree fault and one translation fault, both repairable.
	var targets []string
	for _, m := range mems {
		if strings.HasPrefix(m, "tree-level-") || m == "translation-table" {
			targets = append(targets, m)
		}
	}
	fmt.Printf("policy rebuild, audit every %d departures, %d packets/flow\n\n", audit, packets)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tech\tlinks\twindow\tfired\tdetections\trebuilds\tmin lat\tmean lat\tmax lat (cycles)")
	for _, tc := range techs {
		for _, cap := range []int{256, 1024} {
			camp := fault.Campaign{Seed: seed}
			for i, m := range targets {
				camp.Faults = append(camp.Faults, fault.Fault{
					Mem: m, Kind: fault.BitFlip, Addr: -1,
					At: fault.Trigger{Access: uint64(120 + 60*i)},
				})
			}
			out, err := runCampaign(camp, packets, cap, scheduler.CorruptRebuild, tc.tech, audit, seed)
			if err != nil {
				return err
			}
			if out.err != nil {
				return fmt.Errorf("%s: run failed: %w", tc.name, out.err)
			}
			window, err := tc.tech.WindowCyclesFor()
			if err != nil {
				return err
			}
			var lats []uint64
			rebuilds := 0
			for _, rec := range out.res.Recoveries {
				if rec.Action == "rebuild" {
					rebuilds++
					lats = append(lats, rec.Repaired-rec.Detected)
				}
			}
			min, max, sum := uint64(0), uint64(0), uint64(0)
			for i, l := range lats {
				if i == 0 || l < min {
					min = l
				}
				if l > max {
					max = l
				}
				sum += l
			}
			mean := "-"
			if len(lats) > 0 {
				mean = fmt.Sprintf("%.0f", float64(sum)/float64(len(lats)))
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%d\n",
				tc.name, cap, window, len(out.events), out.res.Detections, rebuilds, min, mean, max)
		}
	}
	w.Flush()
	fmt.Println("\nlatency = cycles from detection to service resume. A rebuild")
	fmt.Println("rescans the tag-store chain and rewrites the tree, table, and")
	fmt.Println("free list at functional-port cost, so it scales with the link")
	fmt.Println("capacity and occupancy; raw per-access SRAM timing is the same")
	fmt.Println("across technologies in this model (the technology sets the")
	fmt.Println("operation-window budget, shown as 'window').")
	return nil
}
