package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"wfqsort/internal/metrics"
	"wfqsort/internal/packet"
	"wfqsort/internal/pqueue"
	"wfqsort/internal/pqueue/harness"
	"wfqsort/internal/rank"
	"wfqsort/internal/schedulers"
)

// Disciplines-matrix shape: every rank program records its op script on
// one seeded workload, and every sorting backend replays that script.
// Fixed so BENCH_disciplines.json baselines are comparable across runs.
const (
	discArrivals = 2000
	discFlows    = 4
	discSeed     = 42
	discTagRange = 4096
	discCapBps   = 1e6
	// discScriptGran is the rank quantization for recorded scripts: fine,
	// because RecordingStore.Script compresses overflowing tag spans by a
	// monotone integer divisor.
	discScriptGran = 1e-5
)

// discProgram is one row family of the matrix: a fresh-program factory
// (programs are stateful, so every run needs its own instance) plus the
// rank granularity for the live HWStore unfairness comparison, scaled so
// the busy-period tag window of that program's rank units fits the
// sorter's range.
type discProgram struct {
	name string
	mk   func() (rank.Program, error)
	gran float64
}

func discPrograms() []discProgram {
	weights := []float64{0.5, 0.25, 0.125, 0.125}
	deadlines := []float64{0.005, 0.01, 0.02, 0.04}
	// Virtual-time programs rank in seconds — the overloaded workload
	// accumulates a busy period of roughly 12s of virtual time, and
	// low-weight flows carry finish tags a few times past it; SRPT ranks
	// in outstanding bits.
	const vtGran, bitsGran = 2e-2, 4000.0
	return []discProgram{
		{"SCFQ", func() (rank.Program, error) { return rank.NewSCFQ(weights, discCapBps) }, vtGran},
		{"STFQ", func() (rank.Program, error) { return rank.NewSTFQ(weights, discCapBps) }, vtGran},
		{"WFQ", func() (rank.Program, error) { return rank.NewWFQ(weights, discCapBps) }, vtGran},
		{"VirtualClock", func() (rank.Program, error) { return rank.NewVirtualClock(weights, discCapBps) }, vtGran},
		{"EDF", func() (rank.Program, error) { return rank.NewEDF(deadlines) }, vtGran},
		{"SRPT", func() (rank.Program, error) { return rank.NewSRPT(len(weights)) }, bitsGran},
		{"LSTF", func() (rank.Program, error) { return rank.NewLSTF(deadlines, discCapBps) }, discScriptGran},
	}
}

// discResult is one (discipline, backend) row of BENCH_disciplines.json.
type discResult struct {
	Discipline string `json:"discipline"`
	Backend    string `json:"backend"`
	Exact      bool   `json:"exact"`

	// WallOpsPerSec is simulator software speed replaying the script.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`

	// Approximation quality (all zero for exact backends, which are
	// additionally checked position-for-position against the oracle).
	Inversions   int64   `json:"inversions"`
	InvertedDeqs int     `json:"inverted_deqs"`
	MaxSlip      int     `json:"max_slip"`
	Unpifoness   float64 `json:"unpifoness"`

	// Unfairness is the worst per-flow served-byte-share deviation of a
	// live run over this backend vs the exact soft reference (only
	// measured for approximate backends; 0 means shares matched).
	Unfairness float64 `json:"unfairness"`
}

// discReport is the BENCH_disciplines.json document.
type discReport struct {
	Schema     string       `json:"schema"`
	Seed       int64        `json:"seed"`
	Arrivals   int          `json:"arrivals"`
	Flows      int          `json:"flows"`
	TagRange   int          `json:"tag_range"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []discResult `json:"results"`
}

// discBackends returns the replay backends: the exact sorters and the
// SP-PIFO strict-priority approximation.
func discBackends() map[string]func() (pqueue.MinTagQueue, error) {
	return map[string]func() (pqueue.MinTagQueue, error){
		"tree":      func() (pqueue.MinTagQueue, error) { return pqueue.NewMultiBitTree(discTagRange) },
		"sharded-4": func() (pqueue.MinTagQueue, error) { return pqueue.NewSharded(4, discTagRange) },
		"sp-pifo-8": func() (pqueue.MinTagQueue, error) { return pqueue.NewSPPIFO(8, discTagRange) },
	}
}

// runDisciplines benchmarks the rank-program x backend matrix: each
// discipline's recorded script replayed on every backend, exact ones
// validated against the differential oracle, the SP-PIFO bank scored
// with inversion/unpifoness metrics plus a live unfairness comparison
// against the exact soft reference.
func runDisciplines(jsonPath string) error {
	report := discReport{
		Schema:     "wfqsort/bench-disciplines/v1",
		Seed:       discSeed,
		Arrivals:   discArrivals,
		Flows:      discFlows,
		TagRange:   discTagRange,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	arrivals := harness.SyntheticArrivals(discSeed, discFlows, discArrivals)
	fmt.Printf("rank-program matrix — %d arrivals, %d flows, seed %d, tag range %d\n",
		discArrivals, discFlows, discSeed, discTagRange)
	fmt.Printf("(exact backends are oracle-checked position-for-position; sp-pifo is scored for approximation error)\n\n")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "discipline\tbackend\texact\twall ops/s\tinversions\tinv deqs\tmax slip\tunpifoness\tunfairness")
	backendNames := []string{"tree", "sharded-4", "sp-pifo-8"}
	backends := discBackends()
	for _, dp := range discPrograms() {
		prog, err := dp.mk()
		if err != nil {
			return fmt.Errorf("%s: %w", dp.name, err)
		}
		script, err := harness.ProgramScript(prog, arrivals, discCapBps, discScriptGran, discTagRange)
		if err != nil {
			return fmt.Errorf("%s: recording script: %w", dp.name, err)
		}
		for _, bname := range backendNames {
			res := discResult{Discipline: dp.name, Backend: bname}
			q, err := backends[bname]()
			if err != nil {
				return fmt.Errorf("%s/%s: %w", dp.name, bname, err)
			}
			res.Exact = q.Exact()
			start := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
			if _, err := harness.Drive(q, script); err != nil {
				return fmt.Errorf("%s/%s: drive: %w", dp.name, bname, err)
			}
			elapsed := time.Since(start) //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
			res.WallOpsPerSec = float64(len(script.Ops)) / elapsed.Seconds()

			fresh, err := backends[bname]()
			if err != nil {
				return err
			}
			if res.Exact {
				if err := harness.Check(fresh, script); err != nil {
					return fmt.Errorf("%s/%s: oracle check: %w", dp.name, bname, err)
				}
			} else {
				rep, err := harness.CheckApprox(fresh, script)
				if err != nil {
					return fmt.Errorf("%s/%s: approx check: %w", dp.name, bname, err)
				}
				res.Inversions = rep.Inversions
				res.InvertedDeqs = rep.InvertedDeqs
				res.MaxSlip = rep.MaxSlip
				res.Unpifoness = rep.Unpifoness
				unf, err := discUnfairness(dp, bname, arrivals)
				if err != nil {
					return fmt.Errorf("%s/%s: unfairness: %w", dp.name, bname, err)
				}
				res.Unfairness = unf
			}
			report.Results = append(report.Results, res)
			fmt.Fprintf(w, "%s\t%s\t%v\t%.0f\t%d\t%d\t%d\t%.1f\t%.4f\n",
				res.Discipline, res.Backend, res.Exact, res.WallOpsPerSec,
				res.Inversions, res.InvertedDeqs, res.MaxSlip, res.Unpifoness, res.Unfairness)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// discUnfairness runs the discipline live over the approximate backend
// (through the HWStore quantization seam) and over the exact soft
// reference, and reports the worst per-flow served-share deviation.
func discUnfairness(dp discProgram, bname string, arrivals []packet.Packet) (float64, error) {
	approxProg, err := dp.mk()
	if err != nil {
		return 0, err
	}
	q, err := discBackends()[bname]()
	if err != nil {
		return 0, err
	}
	hw, err := rank.NewHWStore(q, dp.gran, discTagRange)
	if err != nil {
		return 0, err
	}
	approxPIFO, err := schedulers.NewPIFO(approxProg, hw)
	if err != nil {
		return 0, err
	}
	approxDeps, err := schedulers.Run(arrivals, approxPIFO, discCapBps)
	if err != nil {
		return 0, err
	}
	exactProg, err := dp.mk()
	if err != nil {
		return 0, err
	}
	exactPIFO, err := schedulers.NewPIFO(exactProg, rank.NewSoftStore())
	if err != nil {
		return 0, err
	}
	exactDeps, err := schedulers.Run(arrivals, exactPIFO, discCapBps)
	if err != nil {
		return 0, err
	}
	// Compare the first half of each schedule: over the complete drain
	// both serve every packet, so whole-schedule shares are equal by
	// conservation — the deviation that matters is who was served early.
	n := len(approxDeps)
	if len(exactDeps) < n {
		n = len(exactDeps)
	}
	return metrics.Unfairness(approxDeps[:n/2], exactDeps[:n/2], discFlows)
}
