// The -timers mode: a millions-of-timers workload over the paper's
// sorter as a deadline queue. An operating system's timer wheel — or a
// transport stack's retransmit timers — is the same structure the
// paper sorts packets with: insert a deadline, serve the minimum,
// and (the part classic hardware sorters punt on) cancel armed timers
// in place. Most retransmit timers never fire, so cancellation is the
// hot path; this workload arms, cancels (Zipf-biased toward the newest
// timers, like retransmit timers that almost always cancel fast), and
// fires timers at a sustained rate while holding ≥LiveTarget timers
// armed, then closes an exact ledger: every armed timer fired, was
// cancelled, or drained — zero lost, zero ghosts.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"wfqsort/internal/pqueue"
)

// Timer-workload geometry: 5 tree levels × 4 literal bits = 20-bit
// deadline tags over 2^20 links — the widest geometry whose link word
// (20 tag + 20 addr + 24 payload bits) fits the 64-bit bound.
const (
	timersLevels      = 5
	timersLiteralBits = 4
	timersCapacity    = 1 << 20
	timersMaxDelay    = 1 << 14 // arm horizon above the service floor
	timersZipfS       = 1.2     // cancellation skew (newest-biased)
)

// timersReport is the BENCH_timers.json document.
type timersReport struct {
	Schema     string  `json:"schema"`
	Seed       int64   `json:"seed"`
	LiveTarget int     `json:"live_target"`
	Capacity   int     `json:"capacity"`
	TagBits    int     `json:"tag_bits"`
	MaxDelay   int     `json:"max_delay"`
	CancelFrac float64 `json:"cancel_frac"`
	ZipfS      float64 `json:"zipf_s"`
	SteadyOps  int     `json:"steady_ops"`

	FillSeconds   float64 `json:"fill_seconds"`
	SteadySeconds float64 `json:"steady_seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	ArmPerSec     float64 `json:"arm_per_sec"`
	CancelPerSec  float64 `json:"cancel_per_sec"`
	FirePerSec    float64 `json:"fire_per_sec"`

	Armed     uint64 `json:"armed"`
	Fired     uint64 `json:"fired"`
	Cancelled uint64 `json:"cancelled"`
	Drained   uint64 `json:"drained"`
	Lost      uint64 `json:"lost"`
	Ghosts    uint64 `json:"ghosts"`

	MeanInsertAccesses  float64 `json:"mean_insert_accesses"`
	MeanExtractAccesses float64 `json:"mean_extract_accesses"`
	MeanRemoveAccesses  float64 `json:"mean_remove_accesses"`
	WorstInsert         uint64  `json:"worst_insert_accesses"`
	WorstExtract        uint64  `json:"worst_extract_accesses"`
	WorstRemove         uint64  `json:"worst_remove_accesses"`
}

// timerArena tracks every live timer for O(1) arm/cancel/fire
// bookkeeping: ids are arena slots (they double as the sorter payload),
// liveIDs is a newest-last stack for Zipf victim selection, and pos
// maps id → its liveIDs position for swap-removal.
type timerArena struct {
	tag   []int32 // armed deadline per id
	armed []bool
	free  []int32
	live  []int32
	pos   []int32
}

func newTimerArena(capacity int) *timerArena {
	a := &timerArena{
		tag:   make([]int32, capacity),
		armed: make([]bool, capacity),
		free:  make([]int32, capacity),
		live:  make([]int32, 0, capacity),
		pos:   make([]int32, capacity),
	}
	for i := range a.free {
		a.free[i] = int32(capacity - 1 - i)
	}
	return a
}

func (a *timerArena) arm(tag int) (id int, ok bool) {
	if len(a.free) == 0 {
		return 0, false
	}
	id32 := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.tag[id32] = int32(tag)
	a.armed[id32] = true
	a.pos[id32] = int32(len(a.live))
	a.live = append(a.live, id32)
	return int(id32), true
}

// release unlinks id from the live stack and frees its slot. It
// reports false — a ghost — when id is out of range or not armed.
func (a *timerArena) release(id int) bool {
	if id < 0 || id >= len(a.armed) || !a.armed[id] {
		return false
	}
	p := a.pos[id]
	last := a.live[len(a.live)-1]
	a.live[p] = last
	a.pos[last] = p
	a.live = a.live[:len(a.live)-1]
	a.armed[id] = false
	a.free = append(a.free, int32(id))
	return true
}

// victim picks a cancellation target, Zipf-biased toward the newest
// armed timers (rank 0 = most recently armed).
func (a *timerArena) victim(z *rand.Zipf) (id, tag int) {
	rank := int(z.Uint64())
	if rank >= len(a.live) {
		rank = len(a.live) - 1
	}
	id32 := a.live[len(a.live)-1-rank]
	return int(id32), int(a.tag[id32])
}

func runTimers(seed int64, liveTarget, steadyOps int, cancelFrac float64, jsonPath string) error {
	if liveTarget <= 0 || liveTarget >= timersCapacity {
		return fmt.Errorf("timers: live target %d must be in (0,%d)", liveTarget, timersCapacity)
	}
	if cancelFrac < 0 || cancelFrac > 1 {
		return fmt.Errorf("timers: cancel fraction %v outside [0,1]", cancelFrac)
	}
	q, err := pqueue.NewMultiBitTreeGeometry(timersCapacity, timersLevels, timersLiteralBits)
	if err != nil {
		return err
	}
	var dq pqueue.DynamicQueue = q // the workload needs first-class Remove
	tagRange := 1 << (timersLevels * timersLiteralBits)
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, timersZipfS, 1, uint64(liveTarget-1))
	arena := newTimerArena(timersCapacity)

	rep := timersReport{
		Schema:     "wfqsort/bench-timers/v1",
		Seed:       seed,
		LiveTarget: liveTarget,
		Capacity:   timersCapacity,
		TagBits:    timersLevels * timersLiteralBits,
		MaxDelay:   timersMaxDelay,
		CancelFrac: cancelFrac,
		ZipfS:      timersZipfS,
		SteadyOps:  steadyOps,
	}

	floor := 0
	arm := func() error {
		deadline := floor + 1 + rng.Intn(timersMaxDelay)
		if deadline >= tagRange {
			return fmt.Errorf("timers: deadline %d exhausted the %d-bit tag space", deadline, rep.TagBits)
		}
		id, ok := arena.arm(deadline)
		if !ok {
			return fmt.Errorf("timers: arena full at %d live timers", len(arena.live))
		}
		if err := dq.Insert(deadline, id); err != nil {
			return fmt.Errorf("timers: arm: %w", err)
		}
		rep.Armed++
		return nil
	}

	fillStart := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	for len(arena.live) < liveTarget {
		if err := arm(); err != nil {
			return err
		}
	}
	rep.FillSeconds = time.Since(fillStart).Seconds() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state

	steadyStart := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	for op := 0; op < steadyOps; op++ {
		if rng.Float64() < cancelFrac {
			id, tag := arena.victim(zipf)
			found, err := dq.Remove(tag, id)
			if err != nil {
				return fmt.Errorf("timers: cancel: %w", err)
			}
			if !found {
				rep.Lost++ // armed in the ledger but gone from the sorter
			}
			if !arena.release(id) {
				rep.Ghosts++
			}
			rep.Cancelled++
		} else {
			e, err := dq.ExtractMin()
			if err != nil {
				return fmt.Errorf("timers: fire: %w", err)
			}
			if e.Tag < floor {
				return fmt.Errorf("timers: fired deadline %d below the floor %d", e.Tag, floor)
			}
			floor = e.Tag
			if !arena.release(e.Payload) {
				rep.Ghosts++ // fired an id the ledger says is not armed
			}
			rep.Fired++
		}
		// Hold the live population at the target.
		if err := arm(); err != nil {
			return err
		}
	}
	rep.SteadySeconds = time.Since(steadyStart).Seconds() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state

	// Drain everything still armed, checking sorted order, and close
	// the ledger exactly.
	prev := -1
	for dq.Len() > 0 {
		e, err := dq.ExtractMin()
		if err != nil {
			return fmt.Errorf("timers: drain: %w", err)
		}
		if e.Tag < prev {
			return fmt.Errorf("timers: drain out of order: %d after %d", e.Tag, prev)
		}
		prev = e.Tag
		if !arena.release(e.Payload) {
			rep.Ghosts++
		}
		rep.Drained++
	}
	if remaining := uint64(len(arena.live)); remaining > 0 {
		rep.Lost += remaining // armed in the ledger, never seen again
	}
	if total := rep.Fired + rep.Cancelled + rep.Drained; total != rep.Armed && rep.Lost == 0 {
		rep.Lost = rep.Armed - total
	}

	steadyPrimitives := float64(2 * steadyOps) // one arm per cancel/fire
	rep.OpsPerSec = steadyPrimitives / rep.SteadySeconds
	rep.ArmPerSec = float64(steadyOps) / rep.SteadySeconds
	rep.CancelPerSec = float64(rep.Cancelled) / rep.SteadySeconds
	rep.FirePerSec = float64(rep.Fired) / rep.SteadySeconds
	st := dq.Stats()
	rep.MeanInsertAccesses = st.MeanInsert()
	rep.MeanExtractAccesses = st.MeanExtract()
	rep.MeanRemoveAccesses = st.MeanRemove()
	rep.WorstInsert = st.WorstInsert
	rep.WorstExtract = st.WorstExtract
	rep.WorstRemove = st.WorstRemove

	fmt.Printf("timer workload — %d-bit deadlines, %d live timers, %d steady ops (cancel frac %.2f, Zipf s=%.1f), seed %d\n",
		rep.TagBits, liveTarget, steadyOps, cancelFrac, timersZipfS, seed)
	fmt.Printf("  fill:    %d timers in %.2fs\n", liveTarget, rep.FillSeconds)
	fmt.Printf("  steady:  %.0f ops/s (%.0f arm/s, %.0f cancel/s, %.0f fire/s) over %.2fs\n",
		rep.OpsPerSec, rep.ArmPerSec, rep.CancelPerSec, rep.FirePerSec, rep.SteadySeconds)
	fmt.Printf("  charges: insert %.2f mean / %d worst, extract %.2f mean / %d worst, remove %.2f mean / %d worst accesses\n",
		rep.MeanInsertAccesses, rep.WorstInsert, rep.MeanExtractAccesses, rep.WorstExtract,
		rep.MeanRemoveAccesses, rep.WorstRemove)
	fmt.Printf("  ledger:  %d armed = %d fired + %d cancelled + %d drained (lost %d, ghosts %d)\n",
		rep.Armed, rep.Fired, rep.Cancelled, rep.Drained, rep.Lost, rep.Ghosts)

	if rep.Lost != 0 || rep.Ghosts != 0 {
		return fmt.Errorf("timers: ledger violation: %d lost, %d ghost timers", rep.Lost, rep.Ghosts)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
