// Command sortbench regenerates the paper's Table I: it drives every
// lookup method (software structures, binning, calendar queues, CAMs,
// bit trees, and the paper's multi-bit tree) with a WFQ-like workload
// and prints measured worst-case and mean memory accesses per operation
// plus service-order accuracy.
//
// With -sharded it instead benchmarks the sharded multi-lane sorter
// across lane counts and, with -json, writes the machine-readable
// regression baseline BENCH_sharded.json (format documented in
// EXPERIMENTS.md).
//
// With -membus it drives the silicon sorter on the banked memory fabric
// across tag-store technologies (SDR, QDRII, RLDRAM) and reports the
// arbiter-derived combined-operation window, per-region port traffic,
// and bank balance; with -json it writes BENCH_membus.json.
//
// With -engine it benchmarks the concurrent serving runtime
// (internal/engine): a sustained phase measures end-to-end ops/s and p99
// enqueue-to-extract latency under PolicyBlock, then an overload phase
// offers 2× the measured sustained rate under PolicyDropTail and
// reports the shed fraction, then a GOMAXPROCS scaling sweep (1, 2, 4,
// 8) re-runs the sustained phase at each parallelism level and reports
// the speedup curve of the per-lane datapath; with -json it writes
// BENCH_engine.json (schema wfqsort/bench-engine/v2 — the num_cpu field
// records how many cores the curve actually had available).
//
// With -engine-smoke it runs a reduced two-point scaling check (1 vs 4
// procs) and fails unless 4 procs beat 1 proc by 1.5×; on hosts with
// fewer than 4 CPUs the check is skipped, since a scaling assertion
// without cores to scale onto measures the scheduler, not the engine.
//
// With -disciplines it benchmarks the rank-program seam: every
// discipline (SCFQ, STFQ, WFQ, VirtualClock, EDF, SRPT, LSTF) records
// its op script on a seeded workload, every backend (multi-bit tree,
// sharded sorter, SP-PIFO bank) replays it — exact backends are checked
// position-for-position against the differential oracle, the SP-PIFO
// approximation is scored with inversion/unpifoness metrics and a live
// per-flow unfairness comparison; with -json it writes
// BENCH_disciplines.json.
//
// With -timers it runs the millions-of-timers workload: the sorter as a
// deadline queue over a 20-bit tag geometry, holding -timers-live armed
// timers while a steady phase cancels (Remove, Zipf-biased toward the
// newest timers) and fires (ExtractMin) them at a sustained rate, each
// op paired with a re-arm. The run closes an exact ledger — armed ==
// fired + cancelled + drained, zero lost and zero ghost timers — and
// errors otherwise; with -json it writes BENCH_timers.json.
//
// Usage:
//
//	sortbench [-backlog N] [-steady N] [-window W] [-profile bell|left|uniform] [-seed S]
//	sortbench -sharded [-json BENCH_sharded.json] [-seed S]
//	sortbench -membus [-json BENCH_membus.json] [-seed S]
//	sortbench -engine [-json BENCH_engine.json] [-seed S]
//	sortbench -engine-smoke [-seed S]
//	sortbench -timers [-timers-live N] [-timers-ops N] [-timers-cancel F] [-json BENCH_timers.json] [-seed S]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"wfqsort/internal/core"
	"wfqsort/internal/engine"
	"wfqsort/internal/hwsim"
	"wfqsort/internal/membus"
	"wfqsort/internal/metrics"
	"wfqsort/internal/pqueue"
	"wfqsort/internal/sharded"
	"wfqsort/internal/taglist"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
}

func run() error {
	backlog := flag.Int("backlog", 2000, "standing backlog (N) the methods must sort")
	steady := flag.Int("steady", 2000, "steady-state insert+extract pairs")
	window := flag.Int("window", 800, "tag window above the service floor")
	profileName := flag.String("profile", "bell", "tag distribution: bell, left, uniform (paper Fig. 6)")
	seed := flag.Int64("seed", 1, "workload seed")
	shardedMode := flag.Bool("sharded", false, "benchmark the sharded multi-lane sorter across lane counts")
	membusMode := flag.Bool("membus", false, "benchmark the memory fabric across tag-store technologies")
	engineMode := flag.Bool("engine", false, "benchmark the concurrent serving engine (sustained + 2x overload + GOMAXPROCS scaling sweep)")
	engineSmoke := flag.Bool("engine-smoke", false, "reduced 1-vs-4-proc engine scaling check (CI gate; skipped below 4 CPUs)")
	disciplinesMode := flag.Bool("disciplines", false, "benchmark the rank-program x backend matrix (exact sorters oracle-checked, SP-PIFO scored for approximation error)")
	timersMode := flag.Bool("timers", false, "millions-of-timers workload: arm/cancel/fire deadlines over a 20-bit sorter with an exact ledger")
	timersLive := flag.Int("timers-live", 1_000_000, "with -timers: live timer population to hold")
	timersOps := flag.Int("timers-ops", 4_000_000, "with -timers: steady-state cancel/fire operations (each paired with a re-arm)")
	timersCancel := flag.Float64("timers-cancel", 0.6, "with -timers: fraction of steady ops that cancel instead of fire")
	jsonPath := flag.String("json", "", "with -sharded, -membus, -engine, -disciplines, or -timers: also write machine-readable results to this file")
	flag.Parse()

	if *shardedMode {
		return runSharded(*seed, *jsonPath)
	}
	if *membusMode {
		return runMembus(*seed, *jsonPath)
	}
	if *engineMode {
		return runEngine(*seed, *jsonPath)
	}
	if *engineSmoke {
		return runEngineSmoke(*seed)
	}
	if *disciplinesMode {
		return runDisciplines(*jsonPath)
	}
	if *timersMode {
		return runTimers(*seed, *timersLive, *timersOps, *timersCancel, *jsonPath)
	}

	var profile traffic.TagProfile
	switch *profileName {
	case "bell":
		profile = traffic.ProfileBell
	case "left":
		profile = traffic.ProfileLeftWeighted
	case "uniform":
		profile = traffic.ProfileUniform
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	params := pqueue.DefaultParams()
	if *backlog+16 > params.Capacity {
		params.Capacity = *backlog + 16
	}
	methods, err := pqueue.NewAll(params)
	if err != nil {
		return err
	}

	fmt.Printf("Table I reproduction — %d-bit tags, backlog %d, window %d, %s profile\n",
		params.TagBits, *backlog, *window, profile)
	fmt.Printf("(accesses are worst-case sequential memory touches per operation)\n\n")

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tmodel\texact\tworst ins\tworst ext\tmean ins\tmean ext\tinversions")
	for _, q := range methods {
		res, err := pqueue.RunWorkload(q, *backlog, *steady, *window, 1<<uint(params.TagBits), profile, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name(), err)
		}
		fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\t%.2f\t%.2f\t%d\n",
			res.Name, res.Model, res.Exact,
			res.Stats.WorstInsert, res.Stats.WorstExtract,
			res.Stats.MeanInsert(), res.Stats.MeanExtract(), res.Inversions)
	}
	return w.Flush()
}

// shardedWorkload fixes the benchmark shape so JSON baselines are
// comparable across runs: batched inserts with a Fig. 6 bell tag
// profile, full extraction between batches.
const (
	shardedBatch   = 64
	shardedBatches = 256
	shardedClockHz = 143.2e6
)

// laneResult is one lane-count row of BENCH_sharded.json.
type laneResult struct {
	Lanes int `json:"lanes"`

	// Wall-clock software throughput of the simulator. On a single-CPU
	// host the lane goroutines serialize, so this does NOT show the
	// hardware's lane parallelism — ModelSpeedup does.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	P99ExtractNs  float64 `json:"p99_extract_ns"`

	// Cycle-accurate hardware model: a batch costs its busiest lane's
	// cycles, so ModelSpeedup = Σ lane cycles / max lane cycles and the
	// modeled packet rate is clock/4 × speedup.
	ModelSpeedup  float64 `json:"model_speedup"`
	ModeledMpps   float64 `json:"modeled_mpps"`
	MaxLaneCycles uint64  `json:"max_lane_cycles"`
	SumLaneCycles uint64  `json:"sum_lane_cycles"`
	SelectDepth   int     `json:"select_depth"`

	LaneInsertImbalance float64 `json:"lane_insert_imbalance"`
	PeakOccImbalance    float64 `json:"peak_occupancy_imbalance"`
}

// shardedReport is the BENCH_sharded.json document.
type shardedReport struct {
	Schema     string       `json:"schema"`
	ClockHz    float64      `json:"clock_hz"`
	Seed       int64        `json:"seed"`
	Batch      int          `json:"batch"`
	Batches    int          `json:"batches"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []laneResult `json:"results"`
}

func runSharded(seed int64, jsonPath string) error {
	report := shardedReport{
		Schema:     "wfqsort/bench-sharded/v1",
		ClockHz:    shardedClockHz,
		Seed:       seed,
		Batch:      shardedBatch,
		Batches:    shardedBatches,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("sharded multi-lane sorter — %d batches of %d, bell profile, seed %d\n",
		shardedBatches, shardedBatch, seed)
	fmt.Printf("(wall numbers are simulator software speed on %d CPU(s); hardware scaling is the cycle model)\n\n",
		report.NumCPU)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "lanes\twall ops/s\tp99 extract\tmodel speedup\tmodeled Mpps\tinsert imbalance\tpeak occ imbalance")
	for _, lanes := range []int{1, 2, 4, 8} {
		res, err := benchShardedLanes(lanes, seed)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(w, "%d\t%.0f\t%.0f ns\t%.2fx\t%.1f\t%.3f\t%.3f\n",
			res.Lanes, res.WallOpsPerSec, res.P99ExtractNs, res.ModelSpeedup,
			res.ModeledMpps, res.LaneInsertImbalance, res.PeakOccImbalance)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if base := report.Results[0]; len(report.Results) >= 3 {
		fmt.Printf("\n4-lane vs 1-lane: %.2fx modeled throughput (%.1f → %.1f Mpps)\n",
			report.Results[2].ModeledMpps/base.ModeledMpps, base.ModeledMpps, report.Results[2].ModeledMpps)
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

func benchShardedLanes(lanes int, seed int64) (laneResult, error) {
	s, err := sharded.New(sharded.Config{Lanes: lanes, LaneCapacity: 2 * shardedBatch})
	if err != nil {
		return laneResult{}, err
	}
	gen, err := traffic.NewTagGen(traffic.ProfileBell, seed)
	if err != nil {
		return laneResult{}, err
	}
	extractNs := make([]float64, 0, shardedBatch*shardedBatches)
	peakOcc := 0.0
	ops := 0
	start := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	for b := 0; b < shardedBatches; b++ {
		reqs := make([]sharded.Request, shardedBatch)
		for i := range reqs {
			reqs[i] = sharded.Request{Tag: gen.Sample(0, 4095), Payload: i}
		}
		if _, err := s.InsertBatch(reqs); err != nil {
			return laneResult{}, err
		}
		if occ := metrics.LaneOccupancy(s.LaneLens()).Imbalance; occ > peakOcc {
			peakOcc = occ
		}
		for i := 0; i < shardedBatch; i++ {
			t0 := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
			if _, err := s.ExtractMin(); err != nil {
				return laneResult{}, err
			}
			extractNs = append(extractNs, float64(time.Since(t0).Nanoseconds())) //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
		}
		ops += 2 * shardedBatch
	}
	elapsed := time.Since(start) //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	st := s.StatsSnapshot()
	sort.Float64s(extractNs)
	p99 := extractNs[len(extractNs)*99/100]
	return laneResult{
		Lanes:               lanes,
		WallOpsPerSec:       float64(ops) / elapsed.Seconds(),
		P99ExtractNs:        p99,
		ModelSpeedup:        st.ModelSpeedup(),
		ModeledMpps:         shardedClockHz / 4 * st.ModelSpeedup() / 1e6,
		MaxLaneCycles:       st.MaxLaneCycles,
		SumLaneCycles:       st.SumLaneCycles,
		SelectDepth:         st.SelectDepth,
		LaneInsertImbalance: metrics.LaneLoad(st.LaneInserts).Imbalance,
		PeakOccImbalance:    peakOcc,
	}, nil
}

// membusWorkload fixes the fabric benchmark shape so JSON baselines are
// comparable across runs: a standing backlog, then steady-state
// combined insert+extract windows with a Fig. 6 bell tag profile.
const (
	membusCapacity = 256
	membusBacklog  = 128
	membusSteady   = 1024
)

// membusRegionResult is one fabric region's traffic in BENCH_membus.json.
type membusRegionResult struct {
	Name        string  `json:"name"`
	Reads       uint64  `json:"reads"`
	Writes      uint64  `json:"writes"`
	Cycles      uint64  `json:"cycles"`
	StallCycles uint64  `json:"stall_cycles"`
	Conflicts   uint64  `json:"conflicts"`
	StallFrac   float64 `json:"stall_frac"`
	BankLoadImb float64 `json:"bank_load_imbalance"`
}

// membusResult is one memory-technology row of BENCH_membus.json.
type membusResult struct {
	Tech string `json:"tech"`

	// NominalWindowCycles is the technology's documented combined
	// insert+extract window budget; WorstCombinedWindow is the longest
	// window span the port arbiter actually scheduled during the steady
	// phase. The two agreeing is the "derived, not hand-charged"
	// property. AvgCombinedWindow is smaller: fast paths (bypass, head
	// insert) schedule fewer accesses and the arbiter charges only what
	// the port schedule requires.
	NominalWindowCycles int     `json:"nominal_window_cycles"`
	WorstCombinedWindow uint64  `json:"worst_combined_window_cycles"`
	AvgCombinedWindow   float64 `json:"avg_combined_window_cycles"`

	ClockCycles uint64               `json:"clock_cycles"`
	Regions     []membusRegionResult `json:"regions"`
}

// membusReport is the BENCH_membus.json document.
type membusReport struct {
	Schema   string         `json:"schema"`
	Seed     int64          `json:"seed"`
	Capacity int            `json:"capacity"`
	Backlog  int            `json:"backlog"`
	Steady   int            `json:"steady"`
	Results  []membusResult `json:"results"`
}

func runMembus(seed int64, jsonPath string) error {
	report := membusReport{
		Schema:   "wfqsort/bench-membus/v1",
		Seed:     seed,
		Capacity: membusCapacity,
		Backlog:  membusBacklog,
		Steady:   membusSteady,
	}
	fmt.Printf("memory fabric — backlog %d, %d combined windows, bell profile, seed %d\n",
		membusBacklog, membusSteady, seed)
	fmt.Printf("(windows are scheduled by the port arbiter; nominal vs measured agreeing means no hand-charged cycles)\n\n")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tech\tnominal window\tworst window\tmean window\tclock cycles\tlist stalls\tlist conflicts\tlist bank imbalance")
	for _, tech := range []taglist.MemTech{taglist.TechSDR, taglist.TechQDRII, taglist.TechRLDRAM} {
		res, err := benchMembusTech(tech, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", tech, err)
		}
		report.Results = append(report.Results, res)
		var list membusRegionResult
		for _, r := range res.Regions {
			if r.Name == "tag-storage" {
				list = r
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\t%d\t%d\t%.3f\n",
			res.Tech, res.NominalWindowCycles, res.WorstCombinedWindow, res.AvgCombinedWindow,
			res.ClockCycles, list.StallCycles, list.Conflicts, list.BankLoadImb)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

func benchMembusTech(tech taglist.MemTech, seed int64) (membusResult, error) {
	clock := &hwsim.Clock{}
	fab := membus.New(clock)
	s, err := core.New(core.Config{Capacity: membusCapacity, MemTech: tech, Fabric: fab, Clock: clock})
	if err != nil {
		return membusResult{}, err
	}
	gen, err := traffic.NewTagGen(traffic.ProfileBell, seed)
	if err != nil {
		return membusResult{}, err
	}
	for i := 0; i < membusBacklog; i++ {
		if err := s.Insert(gen.Sample(0, 4095), i); err != nil {
			return membusResult{}, err
		}
	}
	list := fab.Region("tag-storage")
	var worst, spanSum, spanCount uint64
	prev := list.StatsSnapshot()
	for i := 0; i < membusSteady; i++ {
		if _, err := s.InsertExtractMin(gen.Sample(0, 4095), i); err != nil {
			return membusResult{}, err
		}
		cur := list.StatsSnapshot()
		if dw := cur.Windows - prev.Windows; dw > 0 {
			span := cur.WindowCycles - prev.WindowCycles
			spanSum += span
			spanCount += dw
			if span > worst {
				worst = span
			}
		}
		prev = cur
	}
	if _, err := s.Drain(); err != nil {
		return membusResult{}, err
	}
	nominal, err := tech.WindowCyclesFor()
	if err != nil {
		return membusResult{}, err
	}
	res := membusResult{
		Tech:                tech.String(),
		NominalWindowCycles: nominal,
		WorstCombinedWindow: worst,
		ClockCycles:         clock.Now(),
	}
	if spanCount > 0 {
		res.AvgCombinedWindow = float64(spanSum) / float64(spanCount)
	}
	for _, r := range fab.Regions() {
		st := r.StatsSnapshot()
		pp := metrics.RegionPressure(r.Name(), st)
		res.Regions = append(res.Regions, membusRegionResult{
			Name:        r.Name(),
			Reads:       st.Reads,
			Writes:      st.Writes,
			Cycles:      st.Cycles,
			StallCycles: st.StallCycles,
			Conflicts:   st.Conflicts,
			StallFrac:   pp.StallFrac,
			BankLoadImb: metrics.BankLoad(r.BankStats()).Imbalance,
		})
	}
	return res, nil
}

// engineWorkload fixes the engine benchmark shape so JSON baselines are
// comparable across runs: a sustained phase with blocking backpressure
// measures the runtime's end-to-end capacity, then an overload phase
// offers twice that rate with tail-drop shedding.
const (
	engineLanes     = 4
	engineLaneCap   = 1024
	engineRing      = 256
	engineBatch     = 64
	engineProducers = 4
	engineOps       = 200_000
)

// enginePhaseResult is one phase row of BENCH_engine.json.
type enginePhaseResult struct {
	Phase   string `json:"phase"`
	Policy  string `json:"policy"`
	Offered uint64 `json:"offered"`

	// OfferedPerSec is the producer-side attempt rate; in the overload
	// phase it is paced at 2x the sustained capacity.
	OfferedPerSec float64 `json:"offered_per_sec"`
	// OpsPerSec is the sustained served rate over the whole phase,
	// including the final drain.
	OpsPerSec float64 `json:"ops_per_sec"`
	DropRate  float64 `json:"drop_rate"`
	Dropped   uint64  `json:"dropped"`
	Served    uint64  `json:"served"`

	P99LatencyNs  float64 `json:"p99_latency_ns"`
	MeanLatencyNs float64 `json:"mean_latency_ns"`

	Batches  uint64  `json:"batches"`
	AvgBatch float64 `json:"avg_batch"`

	ModelSpeedup float64 `json:"model_speedup"`
	ModeledMpps  float64 `json:"modeled_mpps"`
}

// engineScalingResult is one GOMAXPROCS point of the scaling curve:
// the sustained phase re-run at a fixed parallelism level. SpeedupVs1
// normalizes against this run's own 1-proc point, so the curve is
// meaningful even when absolute throughput moves between hosts.
type engineScalingResult struct {
	GoMaxProcs   int     `json:"gomaxprocs"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P99LatencyNs float64 `json:"p99_latency_ns"`
	SpeedupVs1   float64 `json:"speedup_vs_1proc"`
}

// engineReport is the BENCH_engine.json document
// (schema wfqsort/bench-engine/v2: v1 plus the scaling sweep).
type engineReport struct {
	Schema     string                `json:"schema"`
	Seed       int64                 `json:"seed"`
	Lanes      int                   `json:"lanes"`
	Producers  int                   `json:"producers"`
	Ops        int                   `json:"ops"`
	NumCPU     int                   `json:"num_cpu"`
	GoMaxProcs int                   `json:"gomaxprocs"`
	Results    []enginePhaseResult   `json:"results"`
	Scaling    []engineScalingResult `json:"scaling"`
}

// engineScalingProcs is the GOMAXPROCS sweep of the scaling curve.
var engineScalingProcs = []int{1, 2, 4, 8}

func runEngine(seed int64, jsonPath string) error {
	report := engineReport{
		Schema:     "wfqsort/bench-engine/v2",
		Seed:       seed,
		Lanes:      engineLanes,
		Producers:  engineProducers,
		Ops:        engineOps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("serving engine — %d lanes, %d producers, %d ops, bell profile, seed %d\n",
		engineLanes, engineProducers, engineOps, seed)
	fmt.Printf("(sustained phase blocks on backpressure; overload phase offers 2x sustained with tail drop)\n\n")

	sustained, err := benchEnginePhase(seed, engine.PolicyBlock, 0, engineOps)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, sustained)
	overload, err := benchEnginePhase(seed, engine.PolicyDropTail, 2*sustained.OpsPerSec, engineOps)
	if err != nil {
		return err
	}
	report.Results = append(report.Results, overload)

	for _, procs := range engineScalingProcs {
		r, err := benchEngineAtProcs(seed, procs, engineOps)
		if err != nil {
			return err
		}
		pt := engineScalingResult{
			GoMaxProcs:   procs,
			OpsPerSec:    r.OpsPerSec,
			P99LatencyNs: r.P99LatencyNs,
		}
		if base := report.Scaling; len(base) > 0 && base[0].OpsPerSec > 0 {
			pt.SpeedupVs1 = pt.OpsPerSec / base[0].OpsPerSec
		} else {
			pt.SpeedupVs1 = 1
		}
		report.Scaling = append(report.Scaling, pt)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tpolicy\toffered/s\tserved ops/s\tdrop rate\tp99 latency\tmean latency\tavg batch")
	for _, r := range report.Results {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.3f\t%.0f ns\t%.0f ns\t%.1f\n",
			r.Phase, r.Policy, r.OfferedPerSec, r.OpsPerSec, r.DropRate,
			r.P99LatencyNs, r.MeanLatencyNs, r.AvgBatch)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nsustained %.0f ops/s; at 2x overload the engine shed %.1f%% and held %.0f ops/s\n",
		sustained.OpsPerSec, 100*overload.DropRate, overload.OpsPerSec)

	fmt.Printf("\nscaling sweep (sustained phase, %d CPUs available)\n", report.NumCPU)
	sw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(sw, "gomaxprocs\tserved ops/s\tp99 latency\tspeedup vs 1 proc")
	for _, pt := range report.Scaling {
		fmt.Fprintf(sw, "%d\t%.0f\t%.0f ns\t%.2fx\n",
			pt.GoMaxProcs, pt.OpsPerSec, pt.P99LatencyNs, pt.SpeedupVs1)
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

// benchEngineAtProcs runs one sustained phase pinned to a GOMAXPROCS
// level, restoring the previous level afterwards — one point of the
// scaling curve.
func benchEngineAtProcs(seed int64, procs, ops int) (enginePhaseResult, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	return benchEnginePhase(seed, engine.PolicyBlock, 0, ops)
}

// runEngineSmoke is the CI scaling gate: a reduced two-point sweep that
// fails unless 4 procs beat 1 proc by smokeMinSpeedup. Hosts without 4
// CPUs skip (exit 0) — there is nothing to scale onto.
func runEngineSmoke(seed int64) error {
	const smokeOps = 50_000
	const smokeMinSpeedup = 1.5
	if runtime.NumCPU() < 4 {
		fmt.Printf("engine scaling smoke skipped: %d CPUs available, need 4\n", runtime.NumCPU())
		return nil
	}
	one, err := benchEngineAtProcs(seed, 1, smokeOps)
	if err != nil {
		return err
	}
	four, err := benchEngineAtProcs(seed, 4, smokeOps)
	if err != nil {
		return err
	}
	speedup := four.OpsPerSec / one.OpsPerSec
	fmt.Printf("engine scaling smoke: 1 proc %.0f ops/s, 4 procs %.0f ops/s, speedup %.2fx\n",
		one.OpsPerSec, four.OpsPerSec, speedup)
	if speedup < smokeMinSpeedup {
		return fmt.Errorf("engine scaling smoke failed: 4-proc speedup %.2fx below the %.1fx gate", speedup, smokeMinSpeedup)
	}
	return nil
}

// benchEnginePhase drives one engine through ops submissions from
// engineProducers goroutines. ratePerSec 0 means unpaced (producers run
// at full speed against blocking backpressure); nonzero paces the
// aggregate offered rate with a credit loop.
func benchEnginePhase(seed int64, policy engine.Policy, ratePerSec float64, ops int) (enginePhaseResult, error) {
	e, err := engine.New(engine.Config{
		Lanes: engineLanes, LaneCapacity: engineLaneCap,
		RingSize: engineRing, BatchSize: engineBatch,
		Policy: policy, OutBuffer: 4 * engineBatch,
	})
	if err != nil {
		return enginePhaseResult{}, err
	}
	if err := e.Start(); err != nil {
		return enginePhaseResult{}, err
	}
	var served atomic.Uint64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for range e.Served() {
			served.Add(1)
		}
	}()

	phase := "sustained"
	if ratePerSec > 0 {
		phase = "overload-2x"
	}
	perProducer := ops / engineProducers
	var wg sync.WaitGroup
	var submitErr atomic.Value
	start := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	for p := 0; p < engineProducers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			gen, gerr := traffic.NewTagGen(traffic.ProfileBell, seed+int64(p))
			if gerr != nil {
				submitErr.Store(gerr)
				return
			}
			producerRate := ratePerSec / engineProducers
			for i := 0; i < perProducer; i++ {
				if producerRate > 0 {
					// Credit pacing: never run ahead of the offered-rate
					// budget accumulated since the phase started.
					for float64(i) > producerRate*time.Since(start).Seconds() { //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
						runtime.Gosched()
					}
				}
				if _, serr := e.Submit(gen.Sample(0, e.TagRange()-1), i); serr != nil {
					submitErr.Store(serr)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := e.Stop(); err != nil {
		return enginePhaseResult{}, err
	}
	<-consumerDone
	elapsed := time.Since(start) //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	if v := submitErr.Load(); v != nil {
		return enginePhaseResult{}, v.(error)
	}

	st := e.StatsSnapshot()
	dropped := st.DropsRing + st.DropsRED
	res := enginePhaseResult{
		Phase:         phase,
		Policy:        st.Policy,
		Offered:       st.Submitted + dropped,
		OfferedPerSec: float64(st.Submitted+dropped) / elapsed.Seconds(),
		OpsPerSec:     float64(st.Extracted) / elapsed.Seconds(),
		Dropped:       dropped,
		Served:        served.Load(),
		P99LatencyNs:  st.LatencyP99Ns,
		MeanLatencyNs: st.LatencyMeanNs,
		Batches:       st.Batches,
		ModelSpeedup:  st.ModelSpeedup,
		ModeledMpps:   st.ModeledMpps,
	}
	if res.Offered > 0 {
		res.DropRate = float64(dropped) / float64(res.Offered)
	}
	if st.Batches > 0 {
		res.AvgBatch = float64(st.BatchedOps) / float64(st.Batches)
	}
	// The conservation invariant is part of the benchmark contract: a
	// baseline from a leaking engine would be meaningless.
	if st.Inserted != st.Extracted+st.Removed+st.FaultLost || st.Extracted != served.Load() {
		return enginePhaseResult{}, fmt.Errorf("engine conservation violated: %+v", st)
	}
	return res, nil
}
