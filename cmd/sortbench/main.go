// Command sortbench regenerates the paper's Table I: it drives every
// lookup method (software structures, binning, calendar queues, CAMs,
// bit trees, and the paper's multi-bit tree) with a WFQ-like workload
// and prints measured worst-case and mean memory accesses per operation
// plus service-order accuracy.
//
// With -sharded it instead benchmarks the sharded multi-lane sorter
// across lane counts and, with -json, writes the machine-readable
// regression baseline BENCH_sharded.json (format documented in
// EXPERIMENTS.md).
//
// With -membus it drives the silicon sorter on the banked memory fabric
// across tag-store technologies (SDR, QDRII, RLDRAM) and reports the
// arbiter-derived combined-operation window, per-region port traffic,
// and bank balance; with -json it writes BENCH_membus.json.
//
// Usage:
//
//	sortbench [-backlog N] [-steady N] [-window W] [-profile bell|left|uniform] [-seed S]
//	sortbench -sharded [-json BENCH_sharded.json] [-seed S]
//	sortbench -membus [-json BENCH_membus.json] [-seed S]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"wfqsort/internal/core"
	"wfqsort/internal/hwsim"
	"wfqsort/internal/membus"
	"wfqsort/internal/metrics"
	"wfqsort/internal/pqueue"
	"wfqsort/internal/sharded"
	"wfqsort/internal/taglist"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
}

func run() error {
	backlog := flag.Int("backlog", 2000, "standing backlog (N) the methods must sort")
	steady := flag.Int("steady", 2000, "steady-state insert+extract pairs")
	window := flag.Int("window", 800, "tag window above the service floor")
	profileName := flag.String("profile", "bell", "tag distribution: bell, left, uniform (paper Fig. 6)")
	seed := flag.Int64("seed", 1, "workload seed")
	shardedMode := flag.Bool("sharded", false, "benchmark the sharded multi-lane sorter across lane counts")
	membusMode := flag.Bool("membus", false, "benchmark the memory fabric across tag-store technologies")
	jsonPath := flag.String("json", "", "with -sharded or -membus: also write machine-readable results to this file")
	flag.Parse()

	if *shardedMode {
		return runSharded(*seed, *jsonPath)
	}
	if *membusMode {
		return runMembus(*seed, *jsonPath)
	}

	var profile traffic.TagProfile
	switch *profileName {
	case "bell":
		profile = traffic.ProfileBell
	case "left":
		profile = traffic.ProfileLeftWeighted
	case "uniform":
		profile = traffic.ProfileUniform
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	params := pqueue.DefaultParams()
	if *backlog+16 > params.Capacity {
		params.Capacity = *backlog + 16
	}
	methods, err := pqueue.NewAll(params)
	if err != nil {
		return err
	}

	fmt.Printf("Table I reproduction — %d-bit tags, backlog %d, window %d, %s profile\n",
		params.TagBits, *backlog, *window, profile)
	fmt.Printf("(accesses are worst-case sequential memory touches per operation)\n\n")

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tmodel\texact\tworst ins\tworst ext\tmean ins\tmean ext\tinversions")
	for _, q := range methods {
		res, err := pqueue.RunWorkload(q, *backlog, *steady, *window, 1<<uint(params.TagBits), profile, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name(), err)
		}
		fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\t%.2f\t%.2f\t%d\n",
			res.Name, res.Model, res.Exact,
			res.Stats.WorstInsert, res.Stats.WorstExtract,
			res.Stats.MeanInsert(), res.Stats.MeanExtract(), res.Inversions)
	}
	return w.Flush()
}

// shardedWorkload fixes the benchmark shape so JSON baselines are
// comparable across runs: batched inserts with a Fig. 6 bell tag
// profile, full extraction between batches.
const (
	shardedBatch   = 64
	shardedBatches = 256
	shardedClockHz = 143.2e6
)

// laneResult is one lane-count row of BENCH_sharded.json.
type laneResult struct {
	Lanes int `json:"lanes"`

	// Wall-clock software throughput of the simulator. On a single-CPU
	// host the lane goroutines serialize, so this does NOT show the
	// hardware's lane parallelism — ModelSpeedup does.
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	P99ExtractNs  float64 `json:"p99_extract_ns"`

	// Cycle-accurate hardware model: a batch costs its busiest lane's
	// cycles, so ModelSpeedup = Σ lane cycles / max lane cycles and the
	// modeled packet rate is clock/4 × speedup.
	ModelSpeedup  float64 `json:"model_speedup"`
	ModeledMpps   float64 `json:"modeled_mpps"`
	MaxLaneCycles uint64  `json:"max_lane_cycles"`
	SumLaneCycles uint64  `json:"sum_lane_cycles"`
	SelectDepth   int     `json:"select_depth"`

	LaneInsertImbalance float64 `json:"lane_insert_imbalance"`
	PeakOccImbalance    float64 `json:"peak_occupancy_imbalance"`
}

// shardedReport is the BENCH_sharded.json document.
type shardedReport struct {
	Schema     string       `json:"schema"`
	ClockHz    float64      `json:"clock_hz"`
	Seed       int64        `json:"seed"`
	Batch      int          `json:"batch"`
	Batches    int          `json:"batches"`
	NumCPU     int          `json:"num_cpu"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []laneResult `json:"results"`
}

func runSharded(seed int64, jsonPath string) error {
	report := shardedReport{
		Schema:     "wfqsort/bench-sharded/v1",
		ClockHz:    shardedClockHz,
		Seed:       seed,
		Batch:      shardedBatch,
		Batches:    shardedBatches,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("sharded multi-lane sorter — %d batches of %d, bell profile, seed %d\n",
		shardedBatches, shardedBatch, seed)
	fmt.Printf("(wall numbers are simulator software speed on %d CPU(s); hardware scaling is the cycle model)\n\n",
		report.NumCPU)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "lanes\twall ops/s\tp99 extract\tmodel speedup\tmodeled Mpps\tinsert imbalance\tpeak occ imbalance")
	for _, lanes := range []int{1, 2, 4, 8} {
		res, err := benchShardedLanes(lanes, seed)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(w, "%d\t%.0f\t%.0f ns\t%.2fx\t%.1f\t%.3f\t%.3f\n",
			res.Lanes, res.WallOpsPerSec, res.P99ExtractNs, res.ModelSpeedup,
			res.ModeledMpps, res.LaneInsertImbalance, res.PeakOccImbalance)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if base := report.Results[0]; len(report.Results) >= 3 {
		fmt.Printf("\n4-lane vs 1-lane: %.2fx modeled throughput (%.1f → %.1f Mpps)\n",
			report.Results[2].ModeledMpps/base.ModeledMpps, base.ModeledMpps, report.Results[2].ModeledMpps)
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

func benchShardedLanes(lanes int, seed int64) (laneResult, error) {
	s, err := sharded.New(sharded.Config{Lanes: lanes, LaneCapacity: 2 * shardedBatch})
	if err != nil {
		return laneResult{}, err
	}
	gen, err := traffic.NewTagGen(traffic.ProfileBell, seed)
	if err != nil {
		return laneResult{}, err
	}
	extractNs := make([]float64, 0, shardedBatch*shardedBatches)
	peakOcc := 0.0
	ops := 0
	start := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	for b := 0; b < shardedBatches; b++ {
		reqs := make([]sharded.Request, shardedBatch)
		for i := range reqs {
			reqs[i] = sharded.Request{Tag: gen.Sample(0, 4095), Payload: i}
		}
		if _, err := s.InsertBatch(reqs); err != nil {
			return laneResult{}, err
		}
		if occ := metrics.LaneOccupancy(s.LaneLens()).Imbalance; occ > peakOcc {
			peakOcc = occ
		}
		for i := 0; i < shardedBatch; i++ {
			t0 := time.Now() //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
			if _, err := s.ExtractMin(); err != nil {
				return laneResult{}, err
			}
			extractNs = append(extractNs, float64(time.Since(t0).Nanoseconds())) //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
		}
		ops += 2 * shardedBatch
	}
	elapsed := time.Since(start) //wfqlint:ignore determinism wall-clock benchmark timing, not simulation state
	st := s.Stats()
	sort.Float64s(extractNs)
	p99 := extractNs[len(extractNs)*99/100]
	return laneResult{
		Lanes:               lanes,
		WallOpsPerSec:       float64(ops) / elapsed.Seconds(),
		P99ExtractNs:        p99,
		ModelSpeedup:        st.ModelSpeedup(),
		ModeledMpps:         shardedClockHz / 4 * st.ModelSpeedup() / 1e6,
		MaxLaneCycles:       st.MaxLaneCycles,
		SumLaneCycles:       st.SumLaneCycles,
		SelectDepth:         st.SelectDepth,
		LaneInsertImbalance: metrics.LaneLoad(st.LaneInserts).Imbalance,
		PeakOccImbalance:    peakOcc,
	}, nil
}

// membusWorkload fixes the fabric benchmark shape so JSON baselines are
// comparable across runs: a standing backlog, then steady-state
// combined insert+extract windows with a Fig. 6 bell tag profile.
const (
	membusCapacity = 256
	membusBacklog  = 128
	membusSteady   = 1024
)

// membusRegionResult is one fabric region's traffic in BENCH_membus.json.
type membusRegionResult struct {
	Name        string  `json:"name"`
	Reads       uint64  `json:"reads"`
	Writes      uint64  `json:"writes"`
	Cycles      uint64  `json:"cycles"`
	StallCycles uint64  `json:"stall_cycles"`
	Conflicts   uint64  `json:"conflicts"`
	StallFrac   float64 `json:"stall_frac"`
	BankLoadImb float64 `json:"bank_load_imbalance"`
}

// membusResult is one memory-technology row of BENCH_membus.json.
type membusResult struct {
	Tech string `json:"tech"`

	// NominalWindowCycles is the technology's documented combined
	// insert+extract window budget; WorstCombinedWindow is the longest
	// window span the port arbiter actually scheduled during the steady
	// phase. The two agreeing is the "derived, not hand-charged"
	// property. AvgCombinedWindow is smaller: fast paths (bypass, head
	// insert) schedule fewer accesses and the arbiter charges only what
	// the port schedule requires.
	NominalWindowCycles int     `json:"nominal_window_cycles"`
	WorstCombinedWindow uint64  `json:"worst_combined_window_cycles"`
	AvgCombinedWindow   float64 `json:"avg_combined_window_cycles"`

	ClockCycles uint64               `json:"clock_cycles"`
	Regions     []membusRegionResult `json:"regions"`
}

// membusReport is the BENCH_membus.json document.
type membusReport struct {
	Schema   string         `json:"schema"`
	Seed     int64          `json:"seed"`
	Capacity int            `json:"capacity"`
	Backlog  int            `json:"backlog"`
	Steady   int            `json:"steady"`
	Results  []membusResult `json:"results"`
}

func runMembus(seed int64, jsonPath string) error {
	report := membusReport{
		Schema:   "wfqsort/bench-membus/v1",
		Seed:     seed,
		Capacity: membusCapacity,
		Backlog:  membusBacklog,
		Steady:   membusSteady,
	}
	fmt.Printf("memory fabric — backlog %d, %d combined windows, bell profile, seed %d\n",
		membusBacklog, membusSteady, seed)
	fmt.Printf("(windows are scheduled by the port arbiter; nominal vs measured agreeing means no hand-charged cycles)\n\n")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tech\tnominal window\tworst window\tmean window\tclock cycles\tlist stalls\tlist conflicts\tlist bank imbalance")
	for _, tech := range []taglist.MemTech{taglist.TechSDR, taglist.TechQDRII, taglist.TechRLDRAM} {
		res, err := benchMembusTech(tech, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", tech, err)
		}
		report.Results = append(report.Results, res)
		var list membusRegionResult
		for _, r := range res.Regions {
			if r.Name == "tag-storage" {
				list = r
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%d\t%d\t%d\t%.3f\n",
			res.Tech, res.NominalWindowCycles, res.WorstCombinedWindow, res.AvgCombinedWindow,
			res.ClockCycles, list.StallCycles, list.Conflicts, list.BankLoadImb)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}

func benchMembusTech(tech taglist.MemTech, seed int64) (membusResult, error) {
	clock := &hwsim.Clock{}
	fab := membus.New(clock)
	s, err := core.New(core.Config{Capacity: membusCapacity, MemTech: tech, Fabric: fab, Clock: clock})
	if err != nil {
		return membusResult{}, err
	}
	gen, err := traffic.NewTagGen(traffic.ProfileBell, seed)
	if err != nil {
		return membusResult{}, err
	}
	for i := 0; i < membusBacklog; i++ {
		if err := s.Insert(gen.Sample(0, 4095), i); err != nil {
			return membusResult{}, err
		}
	}
	list := fab.Region("tag-storage")
	var worst, spanSum, spanCount uint64
	prev := list.Stats()
	for i := 0; i < membusSteady; i++ {
		if _, err := s.InsertExtractMin(gen.Sample(0, 4095), i); err != nil {
			return membusResult{}, err
		}
		cur := list.Stats()
		if dw := cur.Windows - prev.Windows; dw > 0 {
			span := cur.WindowCycles - prev.WindowCycles
			spanSum += span
			spanCount += dw
			if span > worst {
				worst = span
			}
		}
		prev = cur
	}
	if _, err := s.Drain(); err != nil {
		return membusResult{}, err
	}
	nominal, err := tech.WindowCyclesFor()
	if err != nil {
		return membusResult{}, err
	}
	res := membusResult{
		Tech:                tech.String(),
		NominalWindowCycles: nominal,
		WorstCombinedWindow: worst,
		ClockCycles:         clock.Now(),
	}
	if spanCount > 0 {
		res.AvgCombinedWindow = float64(spanSum) / float64(spanCount)
	}
	for _, r := range fab.Regions() {
		st := r.Stats()
		pp := metrics.RegionPressure(r.Name(), st)
		res.Regions = append(res.Regions, membusRegionResult{
			Name:        r.Name(),
			Reads:       st.Reads,
			Writes:      st.Writes,
			Cycles:      st.Cycles,
			StallCycles: st.StallCycles,
			Conflicts:   st.Conflicts,
			StallFrac:   pp.StallFrac,
			BankLoadImb: metrics.BankLoad(r.BankStats()).Imbalance,
		})
	}
	return res, nil
}
