// Command sortbench regenerates the paper's Table I: it drives every
// lookup method (software structures, binning, calendar queues, CAMs,
// bit trees, and the paper's multi-bit tree) with a WFQ-like workload
// and prints measured worst-case and mean memory accesses per operation
// plus service-order accuracy.
//
// Usage:
//
//	sortbench [-backlog N] [-steady N] [-window W] [-profile bell|left|uniform] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"wfqsort/internal/pqueue"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
}

func run() error {
	backlog := flag.Int("backlog", 2000, "standing backlog (N) the methods must sort")
	steady := flag.Int("steady", 2000, "steady-state insert+extract pairs")
	window := flag.Int("window", 800, "tag window above the service floor")
	profileName := flag.String("profile", "bell", "tag distribution: bell, left, uniform (paper Fig. 6)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var profile traffic.TagProfile
	switch *profileName {
	case "bell":
		profile = traffic.ProfileBell
	case "left":
		profile = traffic.ProfileLeftWeighted
	case "uniform":
		profile = traffic.ProfileUniform
	default:
		return fmt.Errorf("unknown profile %q", *profileName)
	}

	params := pqueue.DefaultParams()
	if *backlog+16 > params.Capacity {
		params.Capacity = *backlog + 16
	}
	methods, err := pqueue.NewAll(params)
	if err != nil {
		return err
	}

	fmt.Printf("Table I reproduction — %d-bit tags, backlog %d, window %d, %s profile\n",
		params.TagBits, *backlog, *window, profile)
	fmt.Printf("(accesses are worst-case sequential memory touches per operation)\n\n")

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tmodel\texact\tworst ins\tworst ext\tmean ins\tmean ext\tinversions")
	for _, q := range methods {
		res, err := pqueue.RunWorkload(q, *backlog, *steady, *window, 1<<uint(params.TagBits), profile, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", q.Name(), err)
		}
		fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\t%.2f\t%.2f\t%d\n",
			res.Name, res.Model, res.Exact,
			res.Stats.WorstInsert, res.Stats.WorstExtract,
			res.Stats.MeanInsert(), res.Stats.MeanExtract(), res.Inversions)
	}
	return w.Flush()
}
