// Command synthreport prints the analytical 130-nm synthesis report —
// the substitute for the paper's Table II post-layout results — for a
// configurable tree geometry and matcher variant.
//
// Usage:
//
//	synthreport [-levels 3] [-literal 4] [-variant select|ripple|lookahead|block|skip]
package main

import (
	"flag"
	"fmt"
	"os"

	"wfqsort/internal/matcher"
	"wfqsort/internal/synthesis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synthreport:", err)
		os.Exit(1)
	}
}

func run() error {
	levels := flag.Int("levels", 3, "tree levels")
	literal := flag.Int("literal", 4, "literal bits per level (node width = 2^literal)")
	variantName := flag.String("variant", "select", "matcher circuit: ripple, lookahead, block, skip, select")
	sweep := flag.Bool("sweep", false, "print a geometry × variant sweep instead of one report")
	flag.Parse()

	if *sweep {
		return sweepReport()
	}

	var variant matcher.Variant
	switch *variantName {
	case "ripple":
		variant = matcher.Ripple
	case "lookahead":
		variant = matcher.LookAhead
	case "block":
		variant = matcher.BlockLookAhead
	case "skip":
		variant = matcher.SkipLookAhead
	case "select":
		variant = matcher.SelectLookAhead
	default:
		return fmt.Errorf("unknown variant %q", *variantName)
	}

	rep, err := synthesis.Synthesize(synthesis.Config{
		Levels:      *levels,
		LiteralBits: *literal,
		Variant:     variant,
	})
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// sweepReport prints area/frequency/throughput across tree geometries
// and matcher variants — the design space behind the paper's 3×4-bit
// select & look-ahead choice.
func sweepReport() error {
	fmt.Printf("%-10s %-20s %10s %10s %10s %12s\n",
		"geometry", "matcher", "MHz", "Mpps", "mm²", "mW")
	// 6×2-bit is omitted: 4-bit nodes are below the matcher generator's
	// minimum group width.
	for _, geo := range []struct{ levels, literal int }{
		{2, 6}, {3, 4}, {4, 3},
	} {
		for _, v := range []matcher.Variant{matcher.Ripple, matcher.SelectLookAhead} {
			rep, err := synthesis.Synthesize(synthesis.Config{
				Levels:      geo.levels,
				LiteralBits: geo.literal,
				Variant:     v,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%dx%d-bit   %-20s %10.1f %10.1f %10.3f %12.1f\n",
				geo.levels, geo.literal, v, rep.FrequencyMHz, rep.ThroughputMpps,
				rep.TotalAreaMm2, rep.TotalPowerMW)
		}
	}
	return nil
}
