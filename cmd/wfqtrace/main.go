// Command wfqtrace generates packet traces and schedules traces from
// disk, bridging the simulator and external analysis:
//
//	wfqtrace -gen mix -packets 500 -out trace.csv
//	    generate an arrival trace (mixes: mix, voip, bursty)
//	wfqtrace -in trace.csv -weights 0.5,0.3,0.2 -capacity 1e6 -out deps.csv
//	    run the hardware WFQ datapath over a trace and write departures
//	wfqtrace -report deps.csv -flows 3
//	    summarize per-flow delays from a departure record
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wfqsort/internal/metrics"
	"wfqsort/internal/packet"
	"wfqsort/internal/scheduler"
	"wfqsort/internal/trace"
	"wfqsort/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wfqtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	gen := flag.String("gen", "", "generate a trace: mix, voip, or bursty")
	in := flag.String("in", "", "arrival trace to schedule")
	report := flag.String("report", "", "departure record to summarize")
	out := flag.String("out", "", "output file (defaults to stdout)")
	packets := flag.Int("packets", 500, "packets per flow for -gen")
	weightsArg := flag.String("weights", "0.25,0.25,0.25,0.25", "comma-separated session weights for -in")
	capacity := flag.Float64("capacity", 1e6, "link capacity in bits/s for -in")
	flows := flag.Int("flows", 4, "flow count for -report")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	switch {
	case *gen != "":
		pkts, err := generate(*gen, *packets, *seed)
		if err != nil {
			return err
		}
		return trace.WriteArrivals(dst, pkts)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		pkts, err := trace.ReadArrivals(f)
		if err != nil {
			return err
		}
		weights, err := parseWeights(*weightsArg)
		if err != nil {
			return err
		}
		sched, err := scheduler.New(scheduler.Config{Weights: weights, CapacityBps: *capacity})
		if err != nil {
			return err
		}
		res, err := sched.Run(pkts)
		if err != nil {
			return err
		}
		return trace.WriteDepartures(dst, res.Departures)
	case *report != "":
		f, err := os.Open(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		deps, err := trace.ReadDepartures(f)
		if err != nil {
			return err
		}
		perFlow, err := metrics.QueueingDelays(deps, *flows)
		if err != nil {
			return err
		}
		fmt.Fprintf(dst, "%-6s %8s %12s %12s %12s\n", "flow", "packets", "mean (ms)", "p99 (ms)", "max (ms)")
		for fl, delays := range perFlow {
			st := metrics.Summarize(delays)
			fmt.Fprintf(dst, "%-6d %8d %12.3f %12.3f %12.3f\n", fl, st.Count, st.Mean*1e3, st.P99*1e3, st.Max*1e3)
		}
		return nil
	default:
		return fmt.Errorf("one of -gen, -in, or -report is required")
	}
}

func parseWeights(arg string) ([]float64, error) {
	parts := strings.Split(arg, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %w", p, err)
		}
		out = append(out, w)
	}
	return out, nil
}

func generate(kind string, count int, seed int64) ([]packet.Packet, error) {
	switch kind {
	case "mix":
		voip, err := traffic.NewCBR(0, 64e3, 80, count, 0)
		if err != nil {
			return nil, err
		}
		video, err := traffic.NewCBR(1, 3e5, 1000, count/2, 0.0002)
		if err != nil {
			return nil, err
		}
		data, err := traffic.NewPoisson(2, 200, traffic.IMIX{}, count, seed)
		if err != nil {
			return nil, err
		}
		bursty, err := traffic.NewOnOff(3, 3000, 0.02, 0.03, traffic.IMIX{}, count, seed+1)
		if err != nil {
			return nil, err
		}
		return traffic.Merge(voip, video, data, bursty)
	case "voip":
		var srcs []traffic.Source
		for f := 0; f < 4; f++ {
			s, err := traffic.NewCBR(f, 64e3, 80, count, float64(f)*0.0025)
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, s)
		}
		return traffic.Merge(srcs...)
	case "bursty":
		var srcs []traffic.Source
		for f := 0; f < 4; f++ {
			s, err := traffic.NewOnOff(f, 4000, 0.01, 0.04, traffic.IMIX{}, count, seed+int64(f))
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, s)
		}
		return traffic.Merge(srcs...)
	default:
		return nil, fmt.Errorf("unknown generator %q (want mix, voip, or bursty)", kind)
	}
}
