// Command chaoslab runs seeded, deterministic chaos campaigns against a
// live supervised engine (internal/engine + internal/supervisor) and
// asserts the fault-domain guarantees hold under attack:
//
//   - packet conservation: Inserted == Extracted + FaultLost, always,
//     with Submitted == Inserted (no packet is ever lost unaccounted);
//   - bounded recovery: a corrupted lane is rebuilt under the
//     supervisor's retry-with-backoff budget or quarantined, and the
//     engine returns to healthy within a wall-clock bound;
//   - degraded serving: a quarantined lane's tag slice keeps flowing,
//     remapped onto healthy lanes;
//   - readiness truth: engine readiness (the /readyz view wfqd
//     exposes) drops while degraded and recovers with the state
//     machine.
//
// Scenarios (-scenario): corrupt-burst | lane-stall | slow-consumer |
// panic | all. Every scenario is driven by -seed; the same seed replays
// the same fault sequence. Exit status 0 means every assertion held.
//
// Quickstart (see README):
//
//	go run ./cmd/chaoslab -scenario all -seed 1 -packets 4000
//
//wfqlint:ignore-file determinism chaoslab measures real recovery latency and paces real chaos against the wall-clock serving engine; the injected faults themselves are seed-deterministic (DESIGN.md §12)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"wfqsort/internal/engine"
	"wfqsort/internal/fault"
	"wfqsort/internal/membus"
	"wfqsort/internal/supervisor"
)

type config struct {
	scenario string
	seed     int64
	packets  int
	lanes    int
	verbose  bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("chaoslab", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.scenario, "scenario", "all", "campaign: corrupt-burst|lane-stall|slow-consumer|panic|all")
	fs.Int64Var(&c.seed, "seed", 1, "campaign seed (same seed, same fault sequence)")
	fs.IntVar(&c.packets, "packets", 4000, "packets per scenario")
	fs.IntVar(&c.lanes, "lanes", 4, "engine lanes (power of two)")
	fs.BoolVar(&c.verbose, "v", false, "log individual fault events")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.packets < 100 {
		return c, fmt.Errorf("chaoslab: -packets %d too small for a meaningful campaign (min 100)", c.packets)
	}
	return c, nil
}

// lab is one scenario's harness: a supervised engine with per-lane
// injectors and a counting consumer.
type lab struct {
	cfg      config
	eng      *engine.Engine
	fabrics  []*membus.Fabric
	injs     []*fault.Injector
	served   atomic.Uint64
	consumer sync.WaitGroup
	out      io.Writer
}

// newLab builds and starts an engine with one injector per lane fabric
// (region names collide across fabrics, so multi-lane targeting needs
// per-lane injectors). mutate may adjust the config before New.
// consumerDelay > 0 slows the consumer, which both exercises
// backpressure and pins live occupancy in the lanes so injected
// corruption lands on queued state instead of empty memory.
func newLab(cfg config, out io.Writer, mutate func(*engine.Config), consumerDelay time.Duration) (*lab, error) {
	l := &lab{cfg: cfg, out: out}
	l.fabrics = make([]*membus.Fabric, cfg.lanes)
	l.injs = make([]*fault.Injector, cfg.lanes)
	for i := range l.fabrics {
		l.fabrics[i] = membus.New(nil)
		l.injs[i] = fault.NewInjector(fault.Campaign{Seed: cfg.seed + int64(i)}, l.fabrics[i].Clock())
		l.injs[i].Attach(l.fabrics[i])
	}
	ecfg := engine.Config{
		Lanes:         cfg.lanes,
		LaneCapacity:  256,
		LaneFabrics:   l.fabrics,
		RingSize:      64,
		BatchSize:     16,
		RecoverFaults: true,
		Supervision: supervisor.Config{
			MaxRetries:      3,
			BackoffBase:     200 * time.Microsecond,
			BackoffMax:      2 * time.Millisecond,
			QuarantineAfter: 2,
			CleanOps:        1 << 20,
			// Wide enough that leftover in-flight work after a quarantine
			// cannot bring the reinstate probe due on its own — only the
			// degraded-phase traffic can, keeping the degraded-serving
			// window observable.
			ProbeOps: 8192,
		},
		DrainTimeout: 10 * time.Second,
		StallTimeout: 100 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&ecfg)
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		return nil, err
	}
	l.eng = eng
	if err := eng.Start(); err != nil {
		return nil, err
	}
	l.consumer.Add(1)
	go func() {
		defer l.consumer.Done()
		for range eng.Served() {
			l.served.Add(1)
			if consumerDelay > 0 {
				time.Sleep(consumerDelay)
			}
		}
	}()
	return l, nil
}

// submitSpread pushes n seeded packets across the whole tag space.
func (l *lab) submitSpread(rng *rand.Rand, n int) error {
	for i := 0; i < n; i++ {
		if _, err := l.eng.Submit(rng.Intn(l.eng.TagRange()), i); err != nil {
			return fmt.Errorf("chaoslab: submit %d: %w", i, err)
		}
	}
	return nil
}

// waitFor polls until cond holds or the deadline passes.
func (l *lab) waitFor(what string, d time.Duration, cond func(engine.Stats) bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond(l.eng.StatsSnapshot()) {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("chaoslab: timed out after %v waiting for %s (stats %+v)",
		d, what, l.eng.StatsSnapshot().Supervision)
}

// finish stops the engine and checks the conservation invariant.
func (l *lab) finish() (engine.Stats, error) {
	if err := l.eng.Stop(); err != nil {
		return engine.Stats{}, fmt.Errorf("chaoslab: stop: %w", err)
	}
	l.consumer.Wait()
	st := l.eng.StatsSnapshot()
	if st.Inserted != st.Extracted+st.FaultLost {
		return st, fmt.Errorf("chaoslab: CONSERVATION VIOLATED: inserted %d != extracted %d + lost %d",
			st.Inserted, st.Extracted, st.FaultLost)
	}
	if st.Submitted != st.Inserted {
		return st, fmt.Errorf("chaoslab: INGEST LEAK: submitted %d != inserted %d", st.Submitted, st.Inserted)
	}
	if st.SorterLen != 0 || st.RingOccupied != 0 {
		return st, fmt.Errorf("chaoslab: DRAIN INCOMPLETE: sorter %d rings %d", st.SorterLen, st.RingOccupied)
	}
	if got := l.served.Load(); got != st.Extracted {
		return st, fmt.Errorf("chaoslab: served %d != extracted %d", got, st.Extracted)
	}
	return st, nil
}

// scenarioCorruptBurst is the acceptance campaign: repeated multi-bit
// bursts into one lane's tag store push it past inline rebuild — the
// supervisor retries with backoff, quarantines, the lane's tag slice
// serves degraded from healthy lanes, and the reinstate probe returns
// the flushed lane to service. Readiness must flip true → false → true.
func scenarioCorruptBurst(cfg config, out io.Writer) error {
	// A mildly slow consumer keeps live occupancy in the lanes, so the
	// corruption bursts land on queued state (an empty lane audits clean
	// no matter how many bits are flipped in it).
	l, err := newLab(cfg, out, nil, 50*time.Microsecond)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	if err := l.submitSpread(rng, cfg.packets/2); err != nil {
		return err
	}

	// Two corruption rounds against lane 0: QuarantineAfter 2 means the
	// second episode quarantines even if each rebuild succeeds, and a
	// damaged chain additionally exercises the bounded retry loop. Each
	// round first packs lane 0's tag slice dense so the seeded flips are
	// guaranteed to land on live structure, not dead memory.
	inj := l.injs[0]
	for round := 0; round < 2; round++ {
		for i := 0; i < cfg.packets/4; i++ {
			tag := (i * cfg.lanes) % l.eng.TagRange() // lane 0's interleaved slice
			if _, err := l.eng.Submit(tag, i); err != nil {
				return fmt.Errorf("chaoslab: lane-0 pack round %d: %w", round, err)
			}
		}
		if err := l.eng.Inject(func() {
			evs, _ := inj.Burst("tag-storage", 16)
			_, _ = inj.Burst("translation-table", 4)
			if cfg.verbose {
				for _, ev := range evs {
					fmt.Fprintf(out, "chaoslab:   fault %v\n", ev)
				}
			}
			panic("chaoslab: corrupt burst trip")
		}); err != nil {
			return fmt.Errorf("chaoslab: inject round %d: %w", round, err)
		}
		if err := l.waitFor("burst containment", 5*time.Second, func(st engine.Stats) bool {
			return st.DatapathPanics >= uint64(round+1)
		}); err != nil {
			return err
		}
	}
	if err := l.waitFor("lane quarantine", 5*time.Second, func(st engine.Stats) bool {
		return st.Supervision.Quarantines >= 1
	}); err != nil {
		return err
	}
	tQuar := time.Now()
	if l.eng.Ready() {
		return fmt.Errorf("chaoslab: engine reports ready while a lane is quarantined")
	}

	// Degraded serving: keep the quarantined lane's tag slice flowing in
	// batches until the traffic itself brings the reinstate probe due.
	reinstated := false
	for batch := 0; batch < 120 && !reinstated; batch++ {
		for i := 0; i < 512; i++ {
			tag := ((batch*512 + i) * cfg.lanes) % l.eng.TagRange() // lane 0's interleaved slice
			if _, err := l.eng.Submit(tag, cfg.packets+i); err != nil {
				return fmt.Errorf("chaoslab: degraded submit: %w", err)
			}
		}
		reinstated = l.eng.StatsSnapshot().Supervision.Reinstates >= 1
	}
	if !reinstated {
		return fmt.Errorf("chaoslab: lane never reinstated under degraded traffic (stats %+v)",
			l.eng.StatsSnapshot().Supervision)
	}
	if err := l.waitFor("healthy after reinstate", 10*time.Second, func(st engine.Stats) bool {
		return st.Health == "healthy"
	}); err != nil {
		return err
	}
	recovery := time.Since(tQuar)
	if !l.eng.Ready() {
		return fmt.Errorf("chaoslab: engine not ready after reinstate")
	}
	if recovery > 30*time.Second {
		return fmt.Errorf("chaoslab: recovery took %v, budget 30s", recovery)
	}

	st, err := l.finish()
	if err != nil {
		return err
	}
	if st.Remapped == 0 {
		return fmt.Errorf("chaoslab: no packets were remapped during quarantine")
	}
	if st.Supervision.Rebuilds == 0 && st.Supervision.RebuildRetries == 0 {
		return fmt.Errorf("chaoslab: retry machinery never engaged: %+v", st.Supervision)
	}
	fmt.Fprintf(out, "chaoslab: corrupt-burst OK — episodes=%d retries=%d quarantines=%d remapped=%d evacuated=%d lost=%d recovery=%v ready flipped true→false→true\n",
		st.Supervision.FaultEpisodes, st.Supervision.RebuildRetries, st.Supervision.Quarantines,
		st.Remapped, st.Evacuated, st.FaultLost, recovery.Round(time.Millisecond))
	return nil
}

// scenarioLaneStall wedges lane 0's memory with long access delays: the
// stall watchdog must flag the engine not-ready while the datapath is
// stuck, flip back to healthy when the part recovers, and lose nothing.
func scenarioLaneStall(cfg config, out io.Writer) error {
	l, err := newLab(cfg, out, nil, 0)
	if err != nil {
		return err
	}
	// Attach after engine construction so init-time accesses don't burn
	// the stall budget.
	staller := &fault.Staller{Mem: "tag-storage", Delay: 400 * time.Millisecond, Limit: 2}
	staller.Attach(l.fabrics[0])

	stalledSeen := make(chan struct{})
	go func() {
		for {
			st := l.eng.StatsSnapshot()
			if st.Health == "stalled" {
				close(stalledSeen)
				return
			}
			if !st.Running {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	rng := rand.New(rand.NewSource(cfg.seed))
	if err := l.submitSpread(rng, cfg.packets); err != nil {
		return err
	}
	select {
	case <-stalledSeen:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("chaoslab: stall watchdog never flagged the wedged lane")
	}
	if err := l.waitFor("healthy after stall clears", 10*time.Second, func(st engine.Stats) bool {
		return st.Health == "healthy"
	}); err != nil {
		return err
	}
	st, err := l.finish()
	if err != nil {
		return err
	}
	if st.WatchdogTrips == 0 {
		return fmt.Errorf("chaoslab: watchdog trip not recorded")
	}
	if st.FaultLost != 0 {
		return fmt.Errorf("chaoslab: stall shed %d packets; a slow lane must lose nothing", st.FaultLost)
	}
	fmt.Fprintf(out, "chaoslab: lane-stall OK — stalled %d accesses, watchdog trips=%d, served=%d, lost=0\n",
		staller.Stalled(), st.WatchdogTrips, st.Extracted)
	return nil
}

// scenarioSlowConsumer backpressures through a crawling consumer: under
// PolicyBlock nothing may be dropped or lost, and the engine must be
// healthy and ready once the consumer catches up.
func scenarioSlowConsumer(cfg config, out io.Writer) error {
	n := cfg.packets / 4
	l, err := newLab(cfg, out, func(ec *engine.Config) {
		ec.OutBuffer = 4 // tiny buffer so consumer backpressure reaches the datapath
		// The consumer is slow, not wedged: the drain deadline must ride
		// out the crawl.
		ec.DrainTimeout = 60 * time.Second
	}, 200*time.Microsecond)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	if err := l.submitSpread(rng, n); err != nil {
		return err
	}
	st, err := l.finish()
	if err != nil {
		return err
	}
	if st.FaultLost != 0 || st.DropsRing != 0 || st.DropsRED != 0 {
		return fmt.Errorf("chaoslab: slow consumer shed packets: lost=%d drops=%d/%d",
			st.FaultLost, st.DropsRing, st.DropsRED)
	}
	if got := l.served.Load(); got != uint64(n) {
		return fmt.Errorf("chaoslab: slow consumer saw %d of %d", got, n)
	}
	fmt.Fprintf(out, "chaoslab: slow-consumer OK — %d packets through a crawling consumer, lost=0, drops=0\n", n)
	return nil
}

// scenarioPanic injects spaced datapath panics: each must be contained
// as a supervised fault episode with service continuing, and the engine
// must end healthy with nothing lost.
func scenarioPanic(cfg config, out io.Writer) error {
	l, err := newLab(cfg, out, nil, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	const trips = 3
	for i := 0; i < trips; i++ {
		if err := l.submitSpread(rng, cfg.packets/(trips+1)); err != nil {
			return err
		}
		if err := l.eng.Inject(func() { panic(fmt.Sprintf("chaoslab: panic %d", i)) }); err != nil {
			return fmt.Errorf("chaoslab: inject panic %d: %w", i, err)
		}
		if err := l.waitFor("panic containment", 5*time.Second, func(st engine.Stats) bool {
			return st.DatapathPanics >= uint64(i+1) && st.Health == "healthy"
		}); err != nil {
			return err
		}
	}
	if err := l.submitSpread(rng, cfg.packets/(trips+1)); err != nil {
		return err
	}
	st, err := l.finish()
	if err != nil {
		return err
	}
	if st.DatapathPanics != trips || st.Recoveries < trips {
		return fmt.Errorf("chaoslab: panic accounting: panics=%d recoveries=%d", st.DatapathPanics, st.Recoveries)
	}
	fmt.Fprintf(out, "chaoslab: panic OK — %d panics contained, recoveries=%d, served=%d, lost=%d\n",
		st.DatapathPanics, st.Recoveries, st.Extracted, st.FaultLost)
	return nil
}

var scenarios = []struct {
	name string
	run  func(config, io.Writer) error
}{
	{"corrupt-burst", scenarioCorruptBurst},
	{"lane-stall", scenarioLaneStall},
	{"slow-consumer", scenarioSlowConsumer},
	{"panic", scenarioPanic},
}

func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ran := 0
	start := time.Now()
	for _, sc := range scenarios {
		if cfg.scenario != "all" && cfg.scenario != sc.name {
			continue
		}
		ran++
		fmt.Fprintf(out, "chaoslab: running %s (seed %d, %d packets, %d lanes)\n",
			sc.name, cfg.seed, cfg.packets, cfg.lanes)
		if err := sc.run(cfg, out); err != nil {
			return fmt.Errorf("chaoslab: scenario %s FAILED: %w", sc.name, err)
		}
	}
	if ran == 0 {
		return fmt.Errorf("chaoslab: unknown scenario %q (corrupt-burst|lane-stall|slow-consumer|panic|all)", cfg.scenario)
	}
	fmt.Fprintf(out, "chaoslab: all %d scenario(s) passed in %v\n", ran, time.Since(start).Round(time.Millisecond))
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
