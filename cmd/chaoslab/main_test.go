package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseFlagsRejectsTinyCampaign(t *testing.T) {
	if _, err := parseFlags([]string{"-packets", "10"}); err == nil {
		t.Fatal("parseFlags accepted a 10-packet campaign")
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"-scenario", "meteor-strike"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario not rejected: %v", err)
	}
}

// TestCampaignAll runs the full campaign at reduced packet count — the
// same assertions CI's chaos smoke runs under -race.
func TestCampaignAll(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", "all", "-seed", "1", "-packets", "800"}, &sb); err != nil {
		t.Fatalf("campaign failed: %v\noutput:\n%s", err, sb.String())
	}
	for _, want := range []string{"corrupt-burst OK", "lane-stall OK", "slow-consumer OK", "panic OK", "passed"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("campaign output missing %q:\n%s", want, sb.String())
		}
	}
}
