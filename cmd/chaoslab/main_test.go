package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseFlagsRejectsTinyCampaign(t *testing.T) {
	if _, err := parseFlags([]string{"-packets", "10"}); err == nil {
		t.Fatal("parseFlags accepted a 10-packet campaign")
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := run([]string{"-scenario", "meteor-strike"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario not rejected: %v", err)
	}
}

// TestCorruptBurstCampaign runs the corrupt-burst scenario as a package
// test (CI runs it under -race): repeated bursts into lane 0 push it
// through quarantine and reinstate while the parallel datapath keeps
// serving. finish() asserts the exact conservation identity
// (Inserted == Extracted + FaultLost, Submitted == Inserted, empty
// rings and sorters); the output marker pins the readiness flip-flop.
func TestCorruptBurstCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", "corrupt-burst", "-seed", "7", "-packets", "1500"}, &sb); err != nil {
		t.Fatalf("corrupt-burst failed: %v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "ready flipped true→false→true") {
		t.Fatalf("corrupt-burst output missing the readiness flip-flop marker:\n%s", sb.String())
	}
}

// TestLaneStallCampaign runs the lane-stall scenario as a package test
// (CI runs it under -race): a stalling tag store flips the engine
// through stalled and back with zero loss — the per-lane stall
// detection must flag exactly the wedged lane without shedding anything
// (finish() enforces lost == 0 via the conservation identity).
func TestLaneStallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", "lane-stall", "-seed", "11", "-packets", "1500"}, &sb); err != nil {
		t.Fatalf("lane-stall failed: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "lane-stall OK") || !strings.Contains(out, "lost=0") {
		t.Fatalf("lane-stall output missing the lossless-recovery markers:\n%s", out)
	}
}

// TestCampaignAll runs the full campaign at reduced packet count — the
// same assertions CI's chaos smoke runs under -race.
func TestCampaignAll(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign skipped in -short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-scenario", "all", "-seed", "1", "-packets", "800"}, &sb); err != nil {
		t.Fatalf("campaign failed: %v\noutput:\n%s", err, sb.String())
	}
	for _, want := range []string{"corrupt-burst OK", "lane-stall OK", "slow-consumer OK", "panic OK", "passed"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("campaign output missing %q:\n%s", want, sb.String())
		}
	}
}
