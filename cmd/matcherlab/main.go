// Command matcherlab regenerates the paper's Figs. 7 and 8: the delay
// and area curves of the five closest-match circuit variants (ripple,
// look-ahead, block look-ahead, skip & look-ahead, select & look-ahead)
// across word widths, from real gate-level netlists.
//
// Usage:
//
//	matcherlab [-fig 7|8|0] [-widths 8,16,32,64,128]
//
// fig 7 prints critical-path delay (unit gate delays); fig 8 prints
// 4-input LUT counts; fig 0 prints both.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"wfqsort/internal/matcher"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "matcherlab:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "figure to regenerate: 7 (delay), 8 (area), 0 (both)")
	widthsArg := flag.String("widths", "8,16,32,64,128", "comma-separated word widths")
	verilog := flag.String("verilog", "", "emit a matcher as Verilog: ripple, lookahead, block, skip, or select")
	dot := flag.String("dot", "", "emit a matcher netlist as Graphviz DOT (same variant names)")
	verilogWidth := flag.Int("verilog-width", 16, "word width for -verilog/-dot")
	flag.Parse()

	if *verilog != "" {
		return emit(*verilog, *verilogWidth, false)
	}
	if *dot != "" {
		return emit(*dot, *verilogWidth, true)
	}

	var widths []int
	for _, s := range strings.Split(*widthsArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad width %q: %w", s, err)
		}
		widths = append(widths, v)
	}

	type cell struct{ delay, luts, depth int }
	table := make(map[matcher.Variant]map[int]cell)
	for _, v := range matcher.Variants() {
		table[v] = make(map[int]cell, len(widths))
		for _, width := range widths {
			c, err := matcher.Build(v, width)
			if err != nil {
				return fmt.Errorf("build %v width %d: %w", v, width, err)
			}
			rep := c.MapLUT4()
			table[v][width] = cell{delay: c.Delay(), luts: rep.LUTs, depth: rep.Depth}
		}
	}

	print := func(title, unit string, get func(cell) int) error {
		fmt.Printf("%s (%s)\n", title, unit)
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprint(w, "variant\t")
		for _, width := range widths {
			fmt.Fprintf(w, "%d-bit\t", width)
		}
		fmt.Fprintln(w)
		for _, v := range matcher.Variants() {
			fmt.Fprintf(w, "%s\t", v)
			for _, width := range widths {
				fmt.Fprintf(w, "%d\t", get(table[v][width]))
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	if *fig == 7 || *fig == 0 {
		if err := print("Fig. 7 — matcher critical-path delay vs word length", "unit gate delays", func(c cell) int { return c.delay }); err != nil {
			return err
		}
	}
	if *fig == 8 || *fig == 0 {
		if err := print("Fig. 8 — matcher area cost vs word length", "4-input LUTs", func(c cell) int { return c.luts }); err != nil {
			return err
		}
	}
	if *fig != 0 && *fig != 7 && *fig != 8 {
		return fmt.Errorf("unknown figure %d (want 7, 8, or 0)", *fig)
	}
	return nil
}

// emit prints a matcher netlist as synthesizable Verilog (the path back
// to the paper's RTL flow) or as Graphviz DOT for inspection.
func emit(name string, width int, asDOT bool) error {
	var v matcher.Variant
	switch name {
	case "ripple":
		v = matcher.Ripple
	case "lookahead":
		v = matcher.LookAhead
	case "block":
		v = matcher.BlockLookAhead
	case "skip":
		v = matcher.SkipLookAhead
	case "select":
		v = matcher.SelectLookAhead
	default:
		return fmt.Errorf("unknown variant %q", name)
	}
	c, err := matcher.Build(v, width)
	if err != nil {
		return err
	}
	module := fmt.Sprintf("matcher_%s_%d", name, width)
	if asDOT {
		return c.Netlist().WriteDOT(os.Stdout, module)
	}
	return c.Netlist().WriteVerilog(os.Stdout, module)
}
