// Command wfqd is the line-rate serving daemon built on internal/engine:
// a long-running process that admits flows through internal/admission,
// ranks their packets with a pluggable rank program (-discipline:
// SCFQ virtual time by default, or STFQ, VirtualClock, EDF, SRPT,
// LSTF), submits them to the sharded sort/retrieve engine, and exposes
// live observability over HTTP — GET /metrics (text exposition of engine, lane-balance,
// fault-domain, and memory-fabric gauges), /healthz (liveness),
// /readyz (readiness), and /stats.json.
//
// Work arrives three ways, combinable:
//
//   - -trace file.csv   replay an arrival trace (internal/trace format)
//   - -synthetic N      generate N packets of Fig. 6 synthetic load
//   - -ingest tcp:addr | unix:path
//     accept "flow size_bytes" lines over a socket
//
// Quickstart (see README):
//
//	wfqd -synthetic 100000 -listen 127.0.0.1:8080 &
//	curl -s http://127.0.0.1:8080/metrics
//
//wfqlint:ignore-file determinism wfqd is the wall-clock serving daemon: uptime, socket deadlines, and replay pacing are real time by design (DESIGN.md §11)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"wfqsort/internal/admission"
	"wfqsort/internal/engine"
	"wfqsort/internal/packet"
	"wfqsort/internal/police"
	"wfqsort/internal/rank"
	"wfqsort/internal/trace"
	"wfqsort/internal/traffic"
)

type config struct {
	listen     string
	ingest     string
	traceFile  string
	synthetic  int
	profile    string
	lanes      int
	laneCap    int
	ringSize   int
	shards     int
	batch      int
	policy     string
	discipline string
	flows      int
	capBps     float64
	seed       int64
	rate       float64
	linger     bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("wfqd", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.listen, "listen", "127.0.0.1:8080", "HTTP observability address")
	fs.StringVar(&c.ingest, "ingest", "", "packet ingest socket: tcp:host:port or unix:/path")
	fs.StringVar(&c.traceFile, "trace", "", "arrival trace CSV to replay (internal/trace format)")
	fs.IntVar(&c.synthetic, "synthetic", 0, "generate N synthetic packets (Fig. 6 tag profiles)")
	fs.StringVar(&c.profile, "profile", "bell", "synthetic tag profile: bell|left|uniform")
	fs.IntVar(&c.lanes, "lanes", 4, "sorter lanes (power of two, 1..64)")
	fs.IntVar(&c.laneCap, "lane-capacity", 1024, "tag-store links per lane")
	fs.IntVar(&c.ringSize, "ring", 256, "per-lane submission ring depth")
	fs.IntVar(&c.shards, "shards", 0, "SPSC shards per lane's submission ring (1..64, 0 = engine default)")
	fs.IntVar(&c.batch, "batch", 64, "drain batch size")
	fs.StringVar(&c.policy, "policy", "block", "backpressure policy: block|drop-tail|red")
	fs.StringVar(&c.discipline, "discipline", "scfq",
		"rank program driving the tagger: scfq|stfq|vclock|edf|srpt|lstf (edf/lstf use a uniform 10ms per-flow deadline/slack budget)")
	fs.IntVar(&c.flows, "flows", 8, "admission-controlled flows")
	fs.Float64Var(&c.capBps, "capacity-bps", 40e9, "modelled link capacity for WFQ tagging")
	fs.Int64Var(&c.seed, "seed", 1, "synthetic load seed")
	fs.Float64Var(&c.rate, "rate", 0, "synthetic packets/sec (0 = full speed)")
	fs.BoolVar(&c.linger, "linger", false, "keep serving HTTP after finite work completes")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	return c, nil
}

// validate rejects flag combinations that would misbehave at runtime,
// with documented errors, before any engine state is built: a
// zero-capacity submission ring or batch would wedge the datapath, and
// non-positive lane/flow/capacity settings have no meaningful serving
// interpretation.
func (c config) validate() error {
	if c.lanes < 1 || c.lanes > 64 || c.lanes&(c.lanes-1) != 0 {
		return fmt.Errorf("wfqd: -lanes %d must be a power of two in 1..64", c.lanes)
	}
	if c.laneCap < 2 {
		return fmt.Errorf("wfqd: -lane-capacity %d must be at least 2", c.laneCap)
	}
	if c.ringSize < 1 {
		return fmt.Errorf("wfqd: -ring %d is a zero-capacity submission ring; it must be at least 1", c.ringSize)
	}
	if c.shards < 0 || c.shards > 64 {
		return fmt.Errorf("wfqd: -shards %d must be in 0..64 (0 = engine default)", c.shards)
	}
	if c.batch < 1 {
		return fmt.Errorf("wfqd: -batch %d must be at least 1", c.batch)
	}
	if c.flows < 1 {
		return fmt.Errorf("wfqd: -flows %d must be positive", c.flows)
	}
	if c.capBps <= 0 {
		return fmt.Errorf("wfqd: -capacity-bps %g must be positive", c.capBps)
	}
	switch c.discipline {
	case "scfq", "stfq", "vclock", "edf", "srpt", "lstf":
	default:
		return fmt.Errorf("wfqd: unknown discipline %q (scfq|stfq|vclock|edf|srpt|lstf)", c.discipline)
	}
	if c.synthetic < 0 {
		return fmt.Errorf("wfqd: -synthetic %d must be non-negative", c.synthetic)
	}
	if c.rate < 0 {
		return fmt.Errorf("wfqd: -rate %g must be non-negative", c.rate)
	}
	return nil
}

func parsePolicy(s string) (engine.Policy, error) {
	switch s {
	case "block":
		return engine.PolicyBlock, nil
	case "drop-tail":
		return engine.PolicyDropTail, nil
	case "red":
		return engine.PolicyRED, nil
	default:
		return 0, fmt.Errorf("wfqd: unknown policy %q (block|drop-tail|red)", s)
	}
}

func parseProfile(s string) (traffic.TagProfile, error) {
	switch s {
	case "bell":
		return traffic.ProfileBell, nil
	case "left":
		return traffic.ProfileLeftWeighted, nil
	case "uniform":
		return traffic.ProfileUniform, nil
	default:
		return 0, fmt.Errorf("wfqd: unknown profile %q (bell|left|uniform)", s)
	}
}

// server owns the engine, the flow control plane, and the HTTP surface.
// It is constructed separately from main so tests can drive it through
// httptest without sockets or signals.
type server struct {
	cfg     config
	eng     *engine.Engine
	ctrl    *admission.Controller
	prog    rank.Program
	gran    float64
	start   time.Time
	served  atomic.Uint64
	ingests atomic.Uint64
	badLine atomic.Uint64
	healthy atomic.Bool
	// ingested flips on the first successfully admitted packet:
	// readiness requires proof the whole submit path works end to end.
	ingested atomic.Bool

	mu       sync.Mutex
	progLock sync.Mutex
	consumer sync.WaitGroup

	// Ingest-socket lifecycle: ingestWG joins the accept loop and every
	// connection goroutine; conns tracks live connections so shutdown
	// can sever them instead of waiting out idle clients.
	ingestWG sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
}

// trackConn registers a live ingest connection for shutdown teardown.
func (s *server) trackConn(conn net.Conn) {
	s.connMu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

// untrackConn forgets a finished ingest connection.
func (s *server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// closeConns severs every live ingest connection, unblocking their
// serve goroutines so ingestWG.Wait can return.
func (s *server) closeConns() {
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
}

func newServer(cfg config) (*server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pol, err := parsePolicy(cfg.policy)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(engine.Config{
		Lanes:         cfg.lanes,
		LaneCapacity:  cfg.laneCap,
		RingSize:      cfg.ringSize,
		Shards:        cfg.shards,
		BatchSize:     cfg.batch,
		Policy:        pol,
		RecoverFaults: true,
		Label:         cfg.discipline,
	})
	if err != nil {
		return nil, err
	}
	// Admission control plane: each flow declares an equal share of the
	// modelled link; the granted WFQ weights drive the rank program.
	ctrl, err := admission.NewController(cfg.capBps, 0.95, 1500)
	if err != nil {
		return nil, err
	}
	share := cfg.capBps * 0.9 / float64(cfg.flows)
	for f := 0; f < cfg.flows; f++ {
		_, err := ctrl.Admit(admission.Request{
			Name:   fmt.Sprintf("flow-%d", f),
			Bucket: police.Bucket{RateBps: share, BurstBits: 12000},
		})
		if err != nil {
			return nil, fmt.Errorf("wfqd: admitting flow %d: %w", f, err)
		}
	}
	prog, err := newProgram(cfg.discipline, ctrl.Weights(), cfg.capBps)
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:  cfg,
		eng:  eng,
		ctrl: ctrl,
		prog: prog,
		// Tag granularity: one minimum-size packet at the full link rate
		// maps to one tag step, so a flow at its granted share advances
		// a few steps per packet and the tag space wraps gracefully
		// through the eager-mode lanes.
		gran:  (64 * 8) / cfg.capBps,
		start: time.Now(),
	}
	return s, nil
}

// run starts the engine and the discard consumer.
func (s *server) run() error {
	if err := s.eng.Start(); err != nil {
		return err
	}
	s.healthy.Store(true)
	s.consumer.Add(1)
	go func() {
		defer s.consumer.Done()
		for range s.eng.Served() {
			s.served.Add(1)
		}
	}()
	return nil
}

// shutdown severs ingest connections, drains the engine, and waits for
// the consumer and every ingest goroutine. The caller closes the ingest
// listener first, so the accept loop is already on its way out.
func (s *server) shutdown() error {
	s.healthy.Store(false)
	s.closeConns()
	err := s.eng.Stop()
	s.consumer.Wait()
	s.ingestWG.Wait()
	return err
}

// newProgram builds the rank program selected by -discipline over the
// admission-granted weight vector. EDF and LSTF get a uniform 10ms
// per-flow deadline / slack budget: the daemon has no per-flow SLA
// plane, so every flow carries the same latency objective.
func newProgram(discipline string, weights []float64, capBps float64) (rank.Program, error) {
	uniform := func(v float64) []float64 {
		b := make([]float64, len(weights))
		for i := range b {
			b[i] = v
		}
		return b
	}
	switch discipline {
	case "scfq":
		return rank.NewSCFQ(weights, capBps)
	case "stfq":
		return rank.NewSTFQ(weights, capBps)
	case "vclock":
		return rank.NewVirtualClock(weights, capBps)
	case "edf":
		return rank.NewEDF(uniform(0.010))
	case "srpt":
		return rank.NewSRPT(len(weights))
	case "lstf":
		return rank.NewLSTF(uniform(0.010), capBps)
	default:
		return nil, fmt.Errorf("wfqd: unknown discipline %q (scfq|stfq|vclock|edf|srpt|lstf)", discipline)
	}
}

// submitPacket ranks one (flow, sizeBytes) arrival with the configured
// rank program, quantizes the rank into the sorter's tag space, and
// submits it. The program is self-clocked: OnServe fires at submission,
// matching the pre-seam SCFQ Tag-then-Serve behaviour — the engine's
// merge stage, not the program, orders actual departures. Safe for
// concurrent ingest paths.
func (s *server) submitPacket(flow, sizeBytes int) (bool, error) {
	if flow < 0 || flow >= s.cfg.flows {
		return false, fmt.Errorf("wfqd: flow %d outside [0,%d)", flow, s.cfg.flows)
	}
	if sizeBytes <= 0 {
		return false, fmt.Errorf("wfqd: size %d must be positive", sizeBytes)
	}
	now := time.Since(s.start).Seconds()
	p := packet.Packet{Flow: flow, Size: sizeBytes, Arrival: now}
	s.progLock.Lock()
	r, err := s.prog.Rank(p, now)
	if err == nil {
		s.prog.OnServe(p, r, now)
	}
	s.progLock.Unlock()
	if err != nil {
		return false, err
	}
	tag := int(r.Rank/s.gran+0.5) % s.eng.TagRange()
	if tag < 0 {
		// LSTF slack can go negative for an already-late packet: wrap
		// into the tag space the same way the modulo wraps large ranks.
		tag += s.eng.TagRange()
	}
	return s.markIngest(s.eng.Submit(tag, flow))
}

// submitTag submits a pre-computed tag (synthetic load path).
func (s *server) submitTag(tag, payload int) (bool, error) {
	return s.markIngest(s.eng.Submit(tag, payload))
}

// markIngest records the first successfully admitted packet (the
// readiness gate) and passes the Submit result through.
func (s *server) markIngest(ok bool, err error) (bool, error) {
	if ok && err == nil {
		s.ingested.Store(true)
	}
	return ok, err
}

// runSynthetic generates n packets with the configured Fig. 6 profile.
func (s *server) runSynthetic(n int) error {
	prof, err := parseProfile(s.cfg.profile)
	if err != nil {
		return err
	}
	gen, err := traffic.NewTagGen(prof, s.cfg.seed)
	if err != nil {
		return err
	}
	var tick *time.Ticker
	if s.cfg.rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / s.cfg.rate))
		defer tick.Stop()
	}
	for i := 0; i < n; i++ {
		if tick != nil {
			<-tick.C
		}
		if _, err := s.submitTag(gen.Sample(0, s.eng.TagRange()-1), i); err != nil {
			return err
		}
	}
	return nil
}

// runTrace replays an arrival trace through the WFQ tagger.
func (s *server) runTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pkts, err := trace.ReadArrivals(f)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		flow := p.Flow % s.cfg.flows
		if _, err := s.submitPacket(flow, p.Size); err != nil {
			return fmt.Errorf("wfqd: packet %d: %w", p.ID, err)
		}
	}
	return nil
}

// serveIngest accepts "flow size_bytes" lines from one connection.
func (s *server) serveIngest(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var flow, size int
		if _, err := fmt.Sscanf(line, "%d %d", &flow, &size); err != nil {
			s.badLine.Add(1)
			fmt.Fprintf(conn, "ERR %v\n", err)
			continue
		}
		ok, err := s.submitPacket(flow, size)
		switch {
		case err != nil:
			s.badLine.Add(1)
			fmt.Fprintf(conn, "ERR %v\n", err)
		case !ok:
			fmt.Fprintln(conn, "DROP")
		default:
			s.ingests.Add(1)
			fmt.Fprintln(conn, "OK")
		}
	}
}

// listenIngest opens the -ingest socket ("tcp:addr" or "unix:/path").
func (s *server) listenIngest(spec string) (net.Listener, error) {
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || (network != "tcp" && network != "unix") {
		return nil, fmt.Errorf("wfqd: ingest %q must be tcp:host:port or unix:/path", spec)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	s.ingestWG.Add(1)
	go func() {
		defer s.ingestWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.trackConn(conn)
			s.ingestWG.Add(1)
			go s.handleIngestConn(conn)
		}
	}()
	return ln, nil
}

// handleIngestConn runs one ingest connection to completion and joins
// it back into the ingest WaitGroup, so shutdown leaves no connection
// goroutine behind.
func (s *server) handleIngestConn(conn net.Conn) {
	defer s.ingestWG.Done()
	defer s.untrackConn(conn)
	s.serveIngest(conn)
}

// mux builds the HTTP observability surface.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /readyz", s.handleReadyz)
	m.HandleFunc("GET /metrics", s.handleMetrics)
	m.HandleFunc("GET /stats.json", s.handleStatsJSON)
	return m
}

// handleHealthz is the liveness probe: 200 while the datapath process
// is up (including degraded or draining states — a degraded daemon must
// not be restarted, it is busy recovering), 503 only once serving has
// actually stopped.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !s.healthy.Load() {
		http.Error(w, "stopping", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 while draining, while the
// engine is anything but fully healthy (quarantined lane, rebuilding,
// stalled datapath), or before the first successfully admitted packet
// proves the submit path end to end. Load balancers steer new work away
// on 503; liveness (/healthz) stays green the whole time.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	reason := ""
	switch {
	case !s.healthy.Load():
		reason = "draining"
	case !s.eng.Ready():
		reason = "engine " + s.eng.StatsSnapshot().Health
	case !s.ingested.Load():
		reason = "no successful ingest yet"
	}
	if reason != "" {
		http.Error(w, reason, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

type statsPayload struct {
	Schema    string       `json:"schema"`
	Ready     bool         `json:"ready"`
	Health    string       `json:"health"`
	UptimeS   float64      `json:"uptime_s"`
	Served    uint64       `json:"served"`
	Ingested  uint64       `json:"ingested_lines"`
	BadLines  uint64       `json:"bad_lines"`
	Flows     int          `json:"flows"`
	WeightSum float64      `json:"weight_sum"`
	Engine    engine.Stats `json:"engine"`
}

func (s *server) statsPayload() statsPayload {
	weights := s.ctrl.Weights()
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	// The weight vector carries one extra best-effort entry beyond the
	// admitted flows (admission.Controller.Weights).
	est := s.eng.StatsSnapshot()
	return statsPayload{
		Schema:    "wfqsort/wfqd-stats/v1",
		Ready:     s.healthy.Load() && est.Ready && s.ingested.Load(),
		Health:    est.Health,
		UptimeS:   time.Since(s.start).Seconds(),
		Served:    s.served.Load(),
		Ingested:  s.ingests.Load(),
		BadLines:  s.badLine.Load(),
		Flows:     s.cfg.flows,
		WeightSum: sum,
		Engine:    est,
	}
}

func (s *server) handleStatsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.statsPayload()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics writes a Prometheus-style text exposition of the engine
// counters, lane-balance gauges, and per-lane memory-fabric pressure.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.StatsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	emit := func(name, help, typ string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	emit("wfqd_up", "1 while the engine datapath is running.", "gauge", boolGauge(s.healthy.Load()))
	emit("wfqd_ready", "1 while fully healthy and ready for new work (the /readyz view).", "gauge",
		boolGauge(s.healthy.Load() && st.Ready && s.ingested.Load()))
	emit("wfqd_uptime_seconds", "Wall-clock seconds since boot.", "gauge", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "# HELP wfqd_discipline Rank program driving the tagger (info metric).\n# TYPE wfqd_discipline gauge\nwfqd_discipline{name=%q} 1\n", st.Label)
	emit("wfqd_submitted_total", "Packets admitted into the submission rings.", "counter", float64(st.Submitted))
	emit("wfqd_inserted_total", "Packets inserted into the sorter.", "counter", float64(st.Inserted))
	emit("wfqd_extracted_total", "Packets served in tag order.", "counter", float64(st.Extracted))
	emit("wfqd_drops_ring_total", "Tail drops at full submission rings.", "counter", float64(st.DropsRing))
	emit("wfqd_drops_red_total", "Random-early-detection drops.", "counter", float64(st.DropsRED))
	emit("wfqd_fault_lost_total", "Packets lost to contained faults (accounted).", "counter", float64(st.FaultLost))
	emit("wfqd_recoveries_total", "Audit/Rebuild fault recoveries.", "counter", float64(st.Recoveries))
	emit("wfqd_remapped_total", "Packets routed off quarantined lanes.", "counter", float64(st.Remapped))
	emit("wfqd_evacuated_total", "Packets evacuated from lanes at quarantine time.", "counter", float64(st.Evacuated))
	emit("wfqd_drain_shed_total", "Packets shed by watchdog-aborted drains.", "counter", float64(st.DrainShed))
	emit("wfqd_watchdog_trips_total", "Stall and drain watchdog trips.", "counter", float64(st.WatchdogTrips))
	emit("wfqd_datapath_panics_total", "Contained datapath panics.", "counter", float64(st.DatapathPanics))
	emit("wfqd_quarantines_total", "Lane quarantine transitions.", "counter", float64(st.Supervision.Quarantines))
	emit("wfqd_requarantines_total", "Failed reinstate probes.", "counter", float64(st.Supervision.Requarantines))
	emit("wfqd_reinstates_total", "Lanes returned to service after quarantine.", "counter", float64(st.Supervision.Reinstates))
	emit("wfqd_rebuild_retries_total", "Lane rebuild retry attempts beyond the first.", "counter", float64(st.Supervision.RebuildRetries))
	emit("wfqd_quarantined_lanes", "Lanes currently out of service.", "gauge", float64(st.Supervision.QuarantinedLanes))
	for _, es := range []string{"healthy", "degraded", "stalled", "draining", "failed", "stopped"} {
		fmt.Fprintf(&b, "wfqd_engine_state{state=%q} %g\n", es, boolGauge(st.Health == es))
	}
	for i, ls := range st.Supervision.LaneStates {
		fmt.Fprintf(&b, "wfqd_lane_state{lane=\"%d\",state=%q} 1\n", i, ls)
	}
	emit("wfqd_batches_total", "Amortized InsertBatch calls.", "counter", float64(st.Batches))
	emit("wfqd_batched_ops_total", "Inserts carried by batches.", "counter", float64(st.BatchedOps))
	emit("wfqd_inflight", "Packets in rings plus sorter.", "gauge", float64(st.InFlight))
	emit("wfqd_sorter_len", "Tags resident in the sorter.", "gauge", float64(st.SorterLen))
	emit("wfqd_latency_p99_seconds", "p99 enqueue-to-extract latency (sliding window).", "gauge", st.LatencyP99Ns/1e9)
	emit("wfqd_latency_mean_seconds", "Mean enqueue-to-extract latency (sliding window).", "gauge", st.LatencyMeanNs/1e9)
	emit("wfqd_lane_imbalance", "Max/mean lane insert imbalance.", "gauge", st.LaneLoad.Imbalance)
	emit("wfqd_model_speedup", "Modeled lane-parallel speedup (sum/max lane cycles).", "gauge", st.ModelSpeedup)
	emit("wfqd_model_mpps", "Modeled sorter throughput at the paper clock, Mpps.", "gauge", st.ModeledMpps)
	for i, l := range st.RingLens {
		fmt.Fprintf(&b, "wfqd_ring_len{lane=\"%d\"} %d\n", i, l)
	}
	for i, l := range st.LaneLens {
		fmt.Fprintf(&b, "wfqd_lane_len{lane=\"%d\"} %d\n", i, l)
	}
	// Per-lane fabric pressure: region utilization, stalls, conflicts.
	// Regions are emitted in a stable order for scrape diffing.
	for _, lane := range st.FabricLanes {
		rs := make([]int, len(lane.Regions))
		for i := range rs {
			rs[i] = i
		}
		sort.Slice(rs, func(a, b int) bool { return lane.Regions[rs[a]].Region < lane.Regions[rs[b]].Region })
		for _, ri := range rs {
			p := lane.Regions[ri]
			fmt.Fprintf(&b, "wfqd_fabric_accesses_total{lane=\"%d\",region=%q} %d\n", lane.Lane, p.Region, p.Accesses)
			fmt.Fprintf(&b, "wfqd_fabric_stall_cycles_total{lane=\"%d\",region=%q} %d\n", lane.Lane, p.Region, p.StallCycles)
			fmt.Fprintf(&b, "wfqd_fabric_conflicts_total{lane=\"%d\",region=%q} %d\n", lane.Lane, p.Region, p.Conflicts)
			fmt.Fprintf(&b, "wfqd_fabric_stall_frac{lane=\"%d\",region=%q} %g\n", lane.Lane, p.Region, p.StallFrac)
		}
	}
	io.WriteString(w, b.String())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	s, err := newServer(cfg)
	if err != nil {
		return err
	}
	if err := s.run(); err != nil {
		return err
	}

	httpLn, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.mux()}
	go hs.Serve(httpLn)
	fmt.Fprintf(stdout, "wfqd: serving HTTP on %s (%d lanes, %s policy)\n",
		httpLn.Addr(), cfg.lanes, cfg.policy)

	var ingestLn net.Listener
	if cfg.ingest != "" {
		ingestLn, err = s.listenIngest(cfg.ingest)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wfqd: ingesting packets on %s\n", cfg.ingest)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	workDone := make(chan error, 1)
	go func() {
		var werr error
		if cfg.traceFile != "" {
			werr = s.runTrace(cfg.traceFile)
		}
		if werr == nil && cfg.synthetic > 0 {
			werr = s.runSynthetic(cfg.synthetic)
		}
		workDone <- werr
	}()

	finite := cfg.ingest == "" && !cfg.linger
	for {
		select {
		case <-sig:
			fmt.Fprintln(stdout, "wfqd: signal received, draining")
			goto drain
		case werr := <-workDone:
			if werr != nil {
				log.Printf("wfqd: workload: %v", werr)
			}
			if finite {
				goto drain
			}
			// Infinite mode: keep serving the socket / HTTP until a signal.
			workDone = nil
		}
	}
drain:
	if ingestLn != nil {
		ingestLn.Close()
	}
	err = s.shutdown()
	st := s.statsPayload()
	fmt.Fprintf(stdout, "wfqd: drained — submitted %d, served %d, ring drops %d, red drops %d, fault lost %d\n",
		st.Engine.Submitted, st.Served, st.Engine.DropsRing, st.Engine.DropsRED, st.Engine.FaultLost)
	hs.Close()
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
