package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testConfig() config {
	return config{
		listen:  "127.0.0.1:0",
		profile: "bell",
		lanes:   2, laneCap: 256, ringSize: 32, batch: 8,
		policy: "block", discipline: "scfq",
		flows: 4, capBps: 40e9, seed: 7,
	}
}

func bootServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.shutdown() })
	return s
}

func TestFlagAndConfigErrors(t *testing.T) {
	if _, err := parsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := parseProfile("bogus"); err == nil {
		t.Fatal("bogus profile accepted")
	}
	bad := testConfig()
	bad.flows = 0
	if _, err := newServer(bad); err == nil {
		t.Fatal("zero flows accepted")
	}
	bad = testConfig()
	bad.lanes = 3
	if _, err := newServer(bad); err == nil {
		t.Fatal("non-power-of-two lanes accepted")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := bootServer(t)
	for i := 0; i < 200; i++ {
		if _, err := s.submitPacket(i%s.cfg.flows, 64+i); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	body := httpGet(t, ts.URL+"/healthz", 200)
	if !strings.Contains(body, "ok") {
		t.Fatalf("healthz body %q", body)
	}

	body = httpGet(t, ts.URL+"/metrics", 200)
	for _, want := range []string{
		"wfqd_up 1",
		"wfqd_submitted_total",
		"wfqd_extracted_total",
		"wfqd_lane_imbalance",
		"wfqd_fabric_stall_cycles_total",
		"wfqd_ring_len{lane=\"0\"}",
		"wfqd_model_mpps",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body = httpGet(t, ts.URL+"/stats.json", 200)
	var st statsPayload
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats.json: %v", err)
	}
	if st.Schema != "wfqsort/wfqd-stats/v1" || st.Flows != s.cfg.flows {
		t.Fatalf("stats payload %+v", st)
	}
	if st.Engine.Submitted != 200 {
		t.Fatalf("submitted %d", st.Engine.Submitted)
	}
}

func TestHealthzAfterShutdown(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()
	if err := s.shutdown(); err != nil {
		t.Fatal(err)
	}
	httpGet(t, ts.URL+"/healthz", 503)
}

func TestIngestLineProtocol(t *testing.T) {
	s := bootServer(t)
	client, srv := net.Pipe()
	go s.serveIngest(srv)
	defer client.Close()

	send := func(line string) string {
		t.Helper()
		client.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := client.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		n, err := client.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(string(buf[:n]))
	}

	if got := send("1 1500"); got != "OK" {
		t.Fatalf("valid line: %q", got)
	}
	if got := send("notanumber"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("garbage line: %q", got)
	}
	if got := send("99 1500"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad flow: %q", got)
	}
	if got := send("1 -5"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad size: %q", got)
	}
	if s.ingests.Load() != 1 || s.badLine.Load() != 3 {
		t.Fatalf("ingest counters: ok=%d bad=%d", s.ingests.Load(), s.badLine.Load())
	}
}

func TestSyntheticWorkload(t *testing.T) {
	s := bootServer(t)
	if err := s.runSynthetic(500); err != nil {
		t.Fatal(err)
	}
	if err := s.shutdown(); err != nil {
		t.Fatal(err)
	}
	st := s.statsPayload()
	if st.Engine.Submitted != 500 || st.Served != 500 {
		t.Fatalf("synthetic: submitted %d served %d", st.Engine.Submitted, st.Served)
	}
	if st.Engine.Inserted != st.Engine.Extracted+st.Engine.FaultLost {
		t.Fatalf("conservation: %+v", st.Engine)
	}
}

func httpGet(t *testing.T, url string, wantCode int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d (want %d), body %q", url, resp.StatusCode, wantCode, body)
	}
	return string(body)
}

// TestConfigValidateTable sweeps the flag edge cases that must be
// rejected before any engine state is built.
func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*config)
		ok     bool
	}{
		{"defaults", func(*config) {}, true},
		{"zero ring", func(c *config) { c.ringSize = 0 }, false},
		{"negative ring", func(c *config) { c.ringSize = -4 }, false},
		{"explicit shards", func(c *config) { c.shards = 8 }, true},
		{"negative shards", func(c *config) { c.shards = -1 }, false},
		{"too many shards", func(c *config) { c.shards = 100 }, false},
		{"zero batch", func(c *config) { c.batch = 0 }, false},
		{"zero lanes", func(c *config) { c.lanes = 0 }, false},
		{"non-power-of-two lanes", func(c *config) { c.lanes = 6 }, false},
		{"too many lanes", func(c *config) { c.lanes = 128 }, false},
		{"tiny lane capacity", func(c *config) { c.laneCap = 1 }, false},
		{"zero flows", func(c *config) { c.flows = 0 }, false},
		{"zero capacity", func(c *config) { c.capBps = 0 }, false},
		{"negative synthetic", func(c *config) { c.synthetic = -1 }, false},
		{"negative rate", func(c *config) { c.rate = -5 }, false},
		{"edf discipline", func(c *config) { c.discipline = "edf" }, true},
		{"unknown discipline", func(c *config) { c.discipline = "fifo" }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// TestDisciplineMatrix boots the daemon under every rank program and
// proves the full submit path works: a packet is admitted, the engine
// serves it, and the discipline label reaches stats and metrics.
func TestDisciplineMatrix(t *testing.T) {
	for _, d := range []string{"scfq", "stfq", "vclock", "edf", "srpt", "lstf"} {
		t.Run(d, func(t *testing.T) {
			cfg := testConfig()
			cfg.discipline = d
			s, err := newServer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.run(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 32; i++ {
				ok, err := s.submitPacket(i%cfg.flows, 64+i*37)
				if err != nil || !ok {
					t.Fatalf("submit %d under %s: ok=%v err=%v", i, d, ok, err)
				}
			}
			if err := s.shutdown(); err != nil {
				t.Fatal(err)
			}
			st := s.statsPayload()
			if st.Engine.Label != d {
				t.Fatalf("engine label %q, want %q", st.Engine.Label, d)
			}
			if st.Engine.Submitted != 32 || st.Served != 32 {
				t.Fatalf("submitted %d served %d, want 32/32", st.Engine.Submitted, st.Served)
			}
		})
	}
}

// TestReadyzLifecycle: /readyz is 503 before the first successful
// ingest, 200 once traffic has flowed on a healthy engine, and 503
// again after shutdown begins — while /healthz (liveness) stays 200
// until serving actually stops.
func TestReadyzLifecycle(t *testing.T) {
	s, err := newServer(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.run(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	httpGet(t, ts.URL+"/healthz", 200)
	body := httpGet(t, ts.URL+"/readyz", 503)
	if !strings.Contains(body, "no successful ingest") {
		t.Fatalf("pre-ingest readyz body %q", body)
	}

	if ok, err := s.submitPacket(0, 1500); err != nil || !ok {
		t.Fatalf("submit: ok=%v err=%v", ok, err)
	}
	body = httpGet(t, ts.URL+"/readyz", 200)
	if !strings.Contains(body, "ready") {
		t.Fatalf("ready body %q", body)
	}

	var st statsPayload
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/stats.json", 200)), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Health != "healthy" {
		t.Fatalf("stats ready=%v health=%q", st.Ready, st.Health)
	}

	metrics := httpGet(t, ts.URL+"/metrics", 200)
	for _, want := range []string{
		"wfqd_ready 1",
		`wfqd_engine_state{state="healthy"} 1`,
		`wfqd_lane_state{lane="0",state="healthy"} 1`,
		"wfqd_quarantines_total",
		"wfqd_reinstates_total",
		"wfqd_remapped_total",
		"wfqd_drain_shed_total",
		"wfqd_watchdog_trips_total",
		"wfqd_quarantined_lanes",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	if err := s.shutdown(); err != nil {
		t.Fatal(err)
	}
	httpGet(t, ts.URL+"/readyz", 503)
	httpGet(t, ts.URL+"/healthz", 503)
}
