// Command wfqsim runs the full scheduler experiments:
//
//	wfqsim -experiment fairness   — WFQ vs WF²Q vs DRR vs WRR vs FIFO
//	                                against the GPS fluid reference
//	                                (delay bounds and weighted shares)
//	wfqsim -experiment linerate   — the paper's §IV throughput analysis
//	                                plus a full-datapath run
//	wfqsim -experiment wrap       — sustained run wrapping the cyclic
//	                                12-bit tag space with section
//	                                reclamation
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"wfqsort/internal/gps"
	"wfqsort/internal/metrics"
	"wfqsort/internal/network"
	"wfqsort/internal/packet"
	"wfqsort/internal/pipeline"
	"wfqsort/internal/police"
	"wfqsort/internal/scheduler"
	"wfqsort/internal/schedulers"
	"wfqsort/internal/taglist"
	"wfqsort/internal/trace"
	"wfqsort/internal/traffic"
	"wfqsort/internal/wfq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wfqsim:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "fairness", "fairness, linerate, wrap, memtech, or endtoend")
	count := flag.Int("packets", 400, "packets per flow")
	capacity := flag.Float64("capacity", 1e6, "link capacity in bits/s")
	seed := flag.Int64("seed", 1, "workload seed")
	algorithm := flag.String("algorithm", "wfq", "tag computation: wfq or scfq")
	dump := flag.String("dump", "", "write departure records as CSV to this file (linerate experiment)")
	hist := flag.Bool("hist", false, "show VoIP delay histograms in the fairness experiment")
	flag.Parse()
	dumpPath = *dump
	showHist = *hist

	var alg scheduler.Algorithm
	switch *algorithm {
	case "wfq":
		alg = scheduler.AlgWFQ
	case "scfq":
		alg = scheduler.AlgSCFQ
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}

	switch *experiment {
	case "fairness":
		return fairness(*count, *capacity, *seed)
	case "linerate":
		return linerate(*count, *capacity, *seed, alg)
	case "wrap":
		return wraparound(*count, *capacity)
	case "memtech":
		return memtech()
	case "endtoend":
		return endToEnd(*count)
	case "profile":
		return tagProfiles(*seed)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

// tagProfiles renders the Fig. 6 new-tag distribution shapes: the bell
// curve of a diverse mix and the left-weighted streaming/VoIP profile.
func tagProfiles(seed int64) error {
	fmt.Println("Fig. 6 — distribution of new tag values across the active window")
	for _, p := range []traffic.TagProfile{traffic.ProfileLeftWeighted, traffic.ProfileBell, traffic.ProfileUniform} {
		gen, err := traffic.NewTagGen(p, seed)
		if err != nil {
			return err
		}
		h, err := metrics.NewHistogram(0, 1000, 12)
		if err != nil {
			return err
		}
		for i := 0; i < 20000; i++ {
			h.Add(float64(gen.Sample(0, 1000)))
		}
		fmt.Printf("\n%s profile (window position 0 = current lowest tag):\n%s", p, h.Render(44))
	}
	return nil
}

// endToEnd runs the multi-hop Parekh–Gallager experiment: a shaped voice
// flow across three congested hops under WFQ vs FIFO.
func endToEnd(count int) error {
	const capacity = 2e6
	bucket := police.Bucket{RateBps: 64e3, BurstBits: 4000}
	voice, err := traffic.NewCBR(0, 64e3, 160, count, 0)
	if err != nil {
		return err
	}
	bulk, err := traffic.NewOnOff(1, 1500, 0.05, 0.04, traffic.FixedSize(1500), count*2, 1)
	if err != nil {
		return err
	}
	pkts, err := traffic.Merge(voice, bulk)
	if err != nil {
		return err
	}
	shaped, err := police.ShapeTrace(pkts, map[int]police.Bucket{0: bucket})
	if err != nil {
		return err
	}
	weights := []float64{0.1, 0.9}
	caps := []float64{capacity, capacity, capacity}
	bound, err := network.WFQEndToEndBound(bucket.BurstBits, 160*8, weights[0]*capacity, caps, 1500*8)
	if err != nil {
		return err
	}
	fmt.Printf("End-to-end QoS (paper §I-B): shaped voice across %d congested hops\n", len(caps))
	fmt.Printf("Parekh–Gallager bound: %.1f ms\n\n", bound*1e3)
	for _, tc := range []struct {
		name string
		mk   func() (schedulers.Discipline, error)
	}{
		{"WFQ", func() (schedulers.Discipline, error) { return schedulers.NewWFQ(weights, capacity) }},
		{"FIFO", func() (schedulers.Discipline, error) { return schedulers.NewFIFO(), nil }},
	} {
		var hopList []network.Hop
		for range caps {
			hopList = append(hopList, network.Hop{Name: tc.name, CapacityBps: capacity, NewDiscipline: tc.mk})
		}
		path, err := network.NewPath(hopList...)
		if err != nil {
			return err
		}
		res, err := path.Run(shaped)
		if err != nil {
			return err
		}
		var delays []float64
		for _, p := range shaped {
			if p.Flow == 0 {
				delays = append(delays, res.EndToEnd[p.ID])
			}
		}
		st := metrics.Summarize(delays)
		fmt.Printf("%-5s voice end-to-end max %8.2f ms  within bound: %v\n", tc.name, st.Max*1e3, st.Max <= bound)
	}
	return nil
}

// memtech prints the §III-C memory-technology throughput options.
func memtech() error {
	fmt.Printf("Tag-store memory technology (paper §III-C: \"QDRII and RLD RAM\nversions are also under development\"), at the %.1f MHz implementation clock:\n\n",
		scheduler.DefaultClockHz/1e6)
	for _, tech := range []taglist.MemTech{taglist.TechSDR, taglist.TechQDRII, taglist.TechRLDRAM} {
		s, err := scheduler.New(scheduler.Config{
			Weights:     []float64{1},
			CapacityBps: 40e9,
			MemTech:     tech,
		})
		if err != nil {
			return err
		}
		cycles, err := tech.WindowCyclesFor()
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s %d-cycle window → %5.1f Mpps → %6.1f Gb/s @140 B\n",
			tech, cycles, s.SupportedPPS()/1e6, s.SupportedLineRate(140)/1e9)
	}
	return nil
}

// workload builds the motivating mix: one VoIP flow, one video flow, and
// two greedy best-effort data flows that oversubscribe the link, so the
// disciplines' bandwidth allocation policies are actually exercised.
func workload(count int, seed int64) ([]packet.Packet, []float64, error) {
	voip, err := traffic.NewCBR(0, 64e3, 80, count, 0)
	if err != nil {
		return nil, nil, err
	}
	video, err := traffic.NewCBR(1, 3e5, 1000, count/2, 0.0002)
	if err != nil {
		return nil, nil, err
	}
	data1, err := traffic.NewPoisson(2, 400, traffic.IMIX{}, count, seed)
	if err != nil {
		return nil, nil, err
	}
	data2, err := traffic.NewOnOff(3, 4000, 0.02, 0.02, traffic.IMIX{}, count, seed+1)
	if err != nil {
		return nil, nil, err
	}
	pkts, err := traffic.Merge(voip, video, data1, data2)
	if err != nil {
		return nil, nil, err
	}
	return pkts, []float64{0.2, 0.4, 0.2, 0.2}, nil
}

func fairness(count int, capacity float64, seed int64) error {
	pkts, weights, err := workload(count, seed)
	if err != nil {
		return err
	}
	ref, err := gps.Simulate(pkts, weights, capacity)
	if err != nil {
		return err
	}
	wfqD, err := schedulers.NewWFQ(weights, capacity)
	if err != nil {
		return err
	}
	wf2qD, err := schedulers.NewWF2Q(weights, capacity)
	if err != nil {
		return err
	}
	wf2qp, err := schedulers.NewWF2QPlus(weights, capacity)
	if err != nil {
		return err
	}
	drr, err := schedulers.NewDRR([]int{300, 600, 300, 300})
	if err != nil {
		return err
	}
	wrr, err := schedulers.NewWRR([]int{1, 2, 1, 1})
	if err != nil {
		return err
	}
	srr, err := schedulers.NewSRR(weights)
	if err != nil {
		return err
	}
	disciplines := []schedulers.Discipline{wfqD, wf2qD, wf2qp, drr, srr, wrr, schedulers.NewFIFO()}

	bound := wfq.DelayBound(1500*8, capacity)
	fmt.Printf("QoS comparison — %d packets, %d flows, C=%.0f b/s, GPS bound Lmax/C=%.2g s\n\n",
		len(pkts), len(weights), capacity, bound)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "discipline\tmax GPS lag (s)\twithin bound\tVoIP max delay (s)\tJain index")
	for _, d := range disciplines {
		deps, err := schedulers.Run(pkts, d, capacity)
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name(), err)
		}
		lag, err := metrics.MaxGPSLag(deps, ref.Finish)
		if err != nil {
			return err
		}
		delays, err := metrics.QueueingDelays(deps, len(weights))
		if err != nil {
			return err
		}
		voip := metrics.Summarize(delays[0])
		// Measure shares early, while the bursts keep the link
		// contended — once the system drains, every work-conserving
		// discipline has served the same totals.
		horizon := deps[len(deps)-1].Finish * 0.2
		shares, err := metrics.ThroughputShares(deps, len(weights), horizon)
		if err != nil {
			return err
		}
		jain, err := metrics.JainIndex(shares, weights)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.3g\t%v\t%.3g\t%.3f\n", d.Name(), lag, lag <= bound+1e-9, voip.Max, jain)
		if showHist {
			h, err := metrics.NewHistogram(0, voip.Max*1.01+1e-9, 10)
			if err != nil {
				return err
			}
			for _, dl := range delays[0] {
				h.Add(dl)
			}
			histograms = append(histograms, fmt.Sprintf("\n%s VoIP delay distribution (s):\n%s", d.Name(), h.Render(40)))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for _, h := range histograms {
		fmt.Print(h)
	}
	return nil
}

// histograms collects rendered per-discipline delay histograms when
// -hist is set.
var histograms []string

// showHist toggles histogram output for the fairness experiment.
var showHist bool

func linerate(count int, capacity float64, seed int64, alg scheduler.Algorithm) error {
	s, err := scheduler.New(scheduler.Config{
		Weights:     []float64{0.2, 0.4, 0.2, 0.2},
		CapacityBps: capacity,
		Algorithm:   alg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Throughput model (paper §IV):\n")
	fmt.Printf("  clock %.1f MHz / %d-cycle window = %.1f Mpps\n",
		scheduler.DefaultClockHz/1e6, 4, s.SupportedPPS()/1e6)
	for _, size := range []float64{64, 140, 340, 1500} {
		fmt.Printf("  at %4.0f-byte packets: %6.1f Gb/s\n", size, s.SupportedLineRate(size)/1e9)
	}

	// Pipeline balance (paper §III-A): tree levels + translation table
	// matched to the tag-store window.
	pipe, err := pipeline.Datapath(3, 4)
	if err != nil {
		return err
	}
	pres, err := pipe.Simulate(10000)
	if err != nil {
		return err
	}
	fmt.Printf("\nPipeline balance: latency %d cycles, initiation interval %d → %.3f tags/cycle\n",
		pres.Latency, pres.Interval, pres.ThroughputOpsPerCycle())

	pkts, weights, err := workload(count, seed)
	if err != nil {
		return err
	}
	_ = weights
	res, err := s.Run(pkts)
	if err != nil {
		return err
	}
	fmt.Printf("\nFull datapath run: %d packets served, %d sorter windows, peak buffer %d\n",
		len(res.Departures), res.Windows, res.PeakBuffer)
	fmt.Printf("tree search depth ≤ %d node reads (fixed-time guarantee)\n", res.Sorter.TreeMaxDepth)
	fmt.Printf("service-order inversions vs exact tags: %d\n", res.Inversions)
	if dumpPath != "" {
		f, err := os.Create(dumpPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteDepartures(f, res.Departures); err != nil {
			return err
		}
		fmt.Printf("departure records written to %s\n", dumpPath)
	}
	return nil
}

// dumpPath is the optional CSV destination for the linerate run.
var dumpPath string

func wraparound(count int, capacity float64) error {
	src0, err := traffic.NewCBR(0, 0.6*capacity, 500, count*10, 0)
	if err != nil {
		return err
	}
	src1, err := traffic.NewCBR(1, 0.3*capacity, 250, count*10, 0.000013)
	if err != nil {
		return err
	}
	pkts, err := traffic.Merge(src0, src1)
	if err != nil {
		return err
	}
	s, err := scheduler.New(scheduler.Config{
		Weights:     []float64{0.6, 0.4},
		CapacityBps: capacity,
		Granularity: 1e-5,
	})
	if err != nil {
		return err
	}
	res, err := s.Run(pkts)
	if err != nil {
		return err
	}
	fmt.Printf("Cyclic tag space run (paper Fig. 6):\n")
	fmt.Printf("  %d packets served across %d reclaimed sections (%.1f wraps of the 12-bit space)\n",
		len(res.Departures), res.SectionsReclaimed, float64(res.SectionsReclaimed)/16)
	fmt.Printf("  inversions vs exact tags: %d\n", res.Inversions)
	return nil
}
