package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module so the loader resolves
// packages without touching the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.21\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runWfqlint(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(dir, args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitClean: a well-formed package with no findings exits 0.
func TestExitClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, out, stderr := runWfqlint(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	if out != "" {
		t.Fatalf("clean run produced output: %s", out)
	}
}

// TestExitDiagnostics: findings exit 1, load problems do not mask them.
func TestExitDiagnostics(t *testing.T) {
	// An unjustified ignore directive is a diagnostic in any package,
	// independent of analyzer package scoping.
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\n//wfqlint:ignore locksafe\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, out, _ := runWfqlint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "without a justification") {
		t.Fatalf("missing unjustified-directive diagnostic: %s", out)
	}
}

// TestExitLoadFailure: a parse error is an operational failure (exit 2),
// distinct from findings (exit 1).
func TestExitLoadFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\nfunc Broken( {\n",
	})
	code, _, stderr := runWfqlint(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr)
	}
	if stderr == "" {
		t.Fatal("load failure reported nothing on stderr")
	}
}

// TestExitBadFlags: unknown analyzers and unparsable flags exit 2.
func TestExitBadFlags(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n",
	})
	if code, _, _ := runWfqlint(t, dir, "-only", "nosuch", "./..."); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if code, _, _ := runWfqlint(t, dir, "-nosuchflag"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// TestStaleDirective: a justified directive that suppresses nothing is
// itself a finding — exit 1 with a stale report.
func TestStaleDirective(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\n//wfqlint:ignore locksafe suppresses nothing on this line\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, out, _ := runWfqlint(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "stale wfqlint:ignore locksafe directive") {
		t.Fatalf("missing stale-directive diagnostic: %s", out)
	}
}

// TestStaleSkippedUnderOnly: with -only, an unused directive owned by a
// skipped analyzer must NOT be called stale.
func TestStaleSkippedUnderOnly(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\n//wfqlint:ignore locksafe owned by an analyzer this run skips\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, out, _ := runWfqlint(t, dir, "-only", "storeseam", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s", code, out)
	}
}

// TestJSONReport: -json emits a machine-readable document carrying
// diagnostics, the suppression budget, and per-directive staleness.
func TestJSONReport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\n//wfqlint:ignore locksafe stale on purpose\nfunc Add(a, b int) int { return a + b }\n",
	})
	code, out, _ := runWfqlint(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("unparsable -json output: %v\n%s", err, out)
	}
	if rep.Packages != 1 || len(rep.Analyzers) != len(All) {
		t.Fatalf("report header: packages=%d analyzers=%d", rep.Packages, len(rep.Analyzers))
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Analyzer != "directive" {
		t.Fatalf("diagnostics: %+v", rep.Diagnostics)
	}
	if rep.Budget["locksafe"] != 1 {
		t.Fatalf("budget: %+v", rep.Budget)
	}
	if len(rep.Directives) != 1 || !rep.Directives[0].Stale || rep.Directives[0].Used {
		t.Fatalf("directives: %+v", rep.Directives)
	}
}

// TestBudgetReport: -budget prints per-analyzer directive counts.
func TestBudgetReport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"pkg/pkg.go": "package pkg\n\n//wfqlint:ignore-file determinism fixture is wall-clock by design\nfunc Add(a, b int) int { return a + b }\n",
	})
	// The file directive is unused (nothing to suppress) — under the
	// full run that is stale, so restrict to a set excluding
	// determinism to keep the run clean and still see the budget.
	code, out, _ := runWfqlint(t, dir, "-only", "storeseam,portseam", "-budget", "./...")
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s", code, out)
	}
	if !strings.Contains(out, "suppression budget: 1 directives") ||
		!strings.Contains(out, "determinism") {
		t.Fatalf("budget report: %s", out)
	}
}
