// Command wfqlint runs the repository's hardware-invariant analyzers
// over Go packages:
//
//	storeseam    — functional datapath traffic goes through hwsim.Store;
//	               Peek/Poke debug ports only in audit/debug files
//	portseam     — datapath memory traffic goes through *membus.Port;
//	               no raw hwsim memory construction or Store-typed I/O
//	errcorrupt   — corruption errors wrap hwsim.ErrCorrupt with %w and
//	               are classified with errors.Is
//	determinism  — no wall-clock time, no global math/rand, no
//	               order-leaking map iteration
//	cyclecharge  — literal cycle charges match documented costs; audit
//	               files issue no clock-charged Store or Port traffic
//
// Usage:
//
//	go run ./cmd/wfqlint ./...
//	go run ./cmd/wfqlint -only storeseam,errcorrupt ./internal/...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
// Suppress a finding with a justified directive on or above the line:
//
//	//wfqlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/cyclecharge"
	"wfqsort/internal/analysis/determinism"
	"wfqsort/internal/analysis/errcorrupt"
	"wfqsort/internal/analysis/portseam"
	"wfqsort/internal/analysis/storeseam"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	verbose := flag.Bool("v", false, "print per-run summary")
	flag.Parse()

	all := []*analysis.Analyzer{
		storeseam.Analyzer,
		portseam.Analyzer,
		errcorrupt.Analyzer,
		determinism.Analyzer,
		cyclecharge.Analyzer,
	}
	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "wfqlint: unknown analyzer %q (have", name)
				for _, b := range all {
					fmt.Fprintf(os.Stderr, " %s", b.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfqlint: %v\n", err)
		return 2
	}
	res, err := analysis.Check(analyzers, dir, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfqlint: %v\n", err)
		return 2
	}
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "wfqlint: %d packages, %d analyzers, %d diagnostics\n",
			res.Packages, len(analyzers), len(res.Diagnostics))
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}
