// Command wfqlint runs the repository's invariant analyzers over Go
// packages. Five hardware-model analyzers guard the cycle-accurate
// core:
//
//	storeseam     — functional datapath traffic goes through hwsim.Store;
//	                Peek/Poke debug ports only in audit/debug files
//	portseam      — datapath memory traffic goes through *membus.Port;
//	                no raw hwsim memory construction or Store-typed I/O
//	errcorrupt    — corruption errors wrap hwsim.ErrCorrupt with %w and
//	                are classified with errors.Is
//	determinism   — no wall-clock time, no global math/rand, no
//	                order-leaking map iteration
//	cyclecharge   — literal cycle charges match documented costs; audit
//	                files issue no clock-charged Store or Port traffic
//
// Four concurrency-and-lifecycle analyzers guard the parallel serving
// runtime:
//
//	laneconfine   — lane fabrics/ports/clocks/sorters owned by one
//	                datapath goroutine; no captured lane resources,
//	                cross-lane indexing, or unsynchronized shared writes
//	goroutinelife — every go statement in the runtime packages is
//	                joinable from a shutdown path
//	locksafe      — no blocking ops while a mutex is held; cond.Wait in
//	                a loop; no mixed atomic/plain field access
//	conservation  — the engine's packet-conservation ledger is atomic
//	                and every Stats counter joins the assertion or is
//	                justifiably exempt
//
// Usage:
//
//	go run ./cmd/wfqlint ./...
//	go run ./cmd/wfqlint -only storeseam,errcorrupt ./internal/...
//	go run ./cmd/wfqlint -json ./... > diagnostics.json
//
// Exit status: 0 clean, 1 diagnostics reported (including stale ignore
// directives), 2 operational error (bad flags, unknown analyzer, load
// or parse failure). Suppress a finding with a justified directive on
// or above the line:
//
//	//wfqlint:ignore <analyzer> <reason>
//
// A directive that suppresses nothing is stale and itself becomes a
// diagnostic: either the finding it excused is gone, or the analyzer
// name is a typo silently waving something through. Stale detection
// runs only when the full analyzer set does (an -only run cannot tell
// an unused directive from one owned by an analyzer that did not run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"wfqsort/internal/analysis"
	"wfqsort/internal/analysis/conservation"
	"wfqsort/internal/analysis/cyclecharge"
	"wfqsort/internal/analysis/determinism"
	"wfqsort/internal/analysis/errcorrupt"
	"wfqsort/internal/analysis/goroutinelife"
	"wfqsort/internal/analysis/laneconfine"
	"wfqsort/internal/analysis/locksafe"
	"wfqsort/internal/analysis/portseam"
	"wfqsort/internal/analysis/storeseam"
)

// All is the full analyzer suite, in reporting order.
var All = []*analysis.Analyzer{
	storeseam.Analyzer,
	portseam.Analyzer,
	errcorrupt.Analyzer,
	determinism.Analyzer,
	cyclecharge.Analyzer,
	laneconfine.Analyzer,
	goroutinelife.Analyzer,
	locksafe.Analyzer,
	conservation.Analyzer,
}

func main() {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfqlint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(run(dir, os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is one diagnostic in -json output.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonDirective is one suppression directive in -json output.
type jsonDirective struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Analyzer  string `json:"analyzer"`
	Reason    string `json:"reason"`
	FileScope bool   `json:"fileScope"`
	Used      bool   `json:"used"`
	Stale     bool   `json:"stale"`
}

// jsonReport is the -json document: diagnostics plus the suppression
// budget, so CI can archive both in one artifact.
type jsonReport struct {
	Packages    int              `json:"packages"`
	Analyzers   []string         `json:"analyzers"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Budget      map[string]int   `json:"budget"`
	Directives  []jsonDirective  `json:"directives"`
}

// run is the testable entry point: it parses args, runs the checkers
// against packages resolved relative to dir, writes reports to stdout
// and diagnostics/summaries to stderr, and returns the exit status.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wfqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	verbose := fs.Bool("v", false, "print per-run summary")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report on stdout")
	budget := fs.Bool("budget", false, "print the suppression budget (directives per analyzer)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := All
	full := true
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "wfqlint: unknown analyzer %q (have", name)
				for _, b := range All {
					fmt.Fprintf(stderr, " %s", b.Name)
				}
				fmt.Fprintln(stderr, ")")
				return 2
			}
			analyzers = append(analyzers, a)
		}
		full = len(analyzers) == len(All)
	}

	res, err := analysis.Check(analyzers, dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "wfqlint: %v\n", err)
		return 2
	}

	// Stale-ignore detection needs the full suite: with -only, a
	// directive owned by a skipped analyzer is indistinguishable from a
	// dead one.
	ran := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		ran = append(ran, a.Name)
	}
	known := make([]string, 0, len(All))
	for _, a := range All {
		known = append(known, a.Name)
	}
	var stale []*analysis.Directive
	if full {
		stale = res.Stale(ran, known)
	}

	diags := res.Diagnostics
	for _, d := range stale {
		diags = append(diags, analysis.Diagnostic{
			Pos:      d.Pos,
			Analyzer: "directive",
			Message: fmt.Sprintf("stale wfqlint:ignore %s directive: it suppresses nothing — remove it or fix the analyzer name",
				d.Analyzer),
		})
	}

	if *asJSON {
		writeJSON(stdout, res, ran, diags, stale)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if *budget {
			writeBudget(stdout, res)
		}
	}
	if *verbose {
		fmt.Fprintf(stderr, "wfqlint: %d packages, %d analyzers, %d diagnostics, %d directives (%d stale)\n",
			res.Packages, len(analyzers), len(diags), len(res.Directives), len(stale))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeBudget prints the suppression budget in analyzer order.
func writeBudget(w io.Writer, res *analysis.CheckResult) {
	b := res.Budget()
	names := make([]string, 0, len(b))
	for name := range b {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "suppression budget: %d directives\n", len(res.Directives))
	for _, name := range names {
		fmt.Fprintf(w, "  %-14s %d\n", name, b[name])
	}
}

// writeJSON emits the machine-readable report.
func writeJSON(w io.Writer, res *analysis.CheckResult, ran []string, diags []analysis.Diagnostic, stale []*analysis.Directive) {
	staleSet := map[*analysis.Directive]bool{}
	for _, d := range stale {
		staleSet[d] = true
	}
	rep := jsonReport{
		Packages:    res.Packages,
		Analyzers:   ran,
		Diagnostics: []jsonDiagnostic{},
		Budget:      res.Budget(),
		Directives:  []jsonDirective{},
	}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	for _, d := range res.Directives {
		rep.Directives = append(rep.Directives, jsonDirective{
			File:      d.Pos.Filename,
			Line:      d.Pos.Line,
			Analyzer:  d.Analyzer,
			Reason:    d.Reason,
			FileScope: d.FileScope,
			Used:      d.Used,
			Stale:     staleSet[d],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}
