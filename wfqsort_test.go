package wfqsort

import (
	"errors"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: the same
// flow the README quickstart documents.
func TestFacadeQuickstart(t *testing.T) {
	s, err := NewSorter(SorterConfig{Capacity: 128})
	if err != nil {
		t.Fatalf("NewSorter: %v", err)
	}
	for _, tag := range []int{42, 7, 99, 7} {
		if err := s.Insert(tag, tag*10); err != nil {
			t.Fatalf("Insert(%d): %v", tag, err)
		}
	}
	want := []int{7, 7, 42, 99}
	for _, w := range want {
		e, err := s.ExtractMin()
		if err != nil {
			t.Fatalf("ExtractMin: %v", err)
		}
		if e.Tag != w {
			t.Fatalf("served %d, want %d", e.Tag, w)
		}
	}
	if _, err := s.ExtractMin(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty extract = %v, want ErrEmpty", err)
	}
}

func TestFacadeScheduler(t *testing.T) {
	sched, err := NewScheduler(SchedulerConfig{
		Weights:     []float64{0.5, 0.5},
		CapacityBps: 1e6,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if sched.SupportedPPS() != DefaultClockHz/WindowCycles {
		t.Fatalf("SupportedPPS = %v", sched.SupportedPPS())
	}
}

func TestFacadeConstants(t *testing.T) {
	if WindowCycles != 4 {
		t.Fatalf("WindowCycles = %d, want 4", WindowCycles)
	}
	if ModeEager == ModeHardware {
		t.Fatal("modes collide")
	}
	if FullError == FullTailDrop || FullTailDrop == FullRED {
		t.Fatal("overload policies collide")
	}
}

func TestFacadeOverloadPolicy(t *testing.T) {
	sched, err := NewScheduler(SchedulerConfig{
		Weights:        []float64{1},
		CapacityBps:    1e6,
		SorterCapacity: 8,
		BufferSlots:    8,
		OnFull:         FullTailDrop,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if sched == nil {
		t.Fatal("nil scheduler")
	}
}

// TestFacadeShardedSorter exercises the sharded scale-out through the
// public API: the same flow the README sharded example documents.
func TestFacadeShardedSorter(t *testing.T) {
	s, err := NewShardedSorter(ShardedConfig{Lanes: 4, LaneCapacity: 64})
	if err != nil {
		t.Fatalf("NewShardedSorter: %v", err)
	}
	if _, err := s.InsertBatch([]ShardedRequest{
		{Tag: 310, Payload: 100}, {Tag: 42, Payload: 101}, {Tag: 42, Payload: 102},
	}); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	want := []Entry{{Tag: 42, Payload: 101}, {Tag: 42, Payload: 102}, {Tag: 310, Payload: 100}}
	for _, w := range want {
		e, err := s.ExtractMin()
		if err != nil {
			t.Fatalf("ExtractMin: %v", err)
		}
		if e.Tag != w.Tag || e.Payload != w.Payload {
			t.Fatalf("served %d/%d, want %d/%d", e.Tag, e.Payload, w.Tag, w.Payload)
		}
	}
	if sp := s.StatsSnapshot().ModelSpeedup(); sp < 1 {
		t.Fatalf("model speedup %v, want ≥ 1", sp)
	}
}

// TestFacadeRankSeam drives the public rank-program surface: a STFQ
// program over the paper's sorter (through the HW rank store), the
// SP-PIFO approximation backend, and the hierarchical HPFQ tree.
func TestFacadeRankSeam(t *testing.T) {
	prog, err := NewSTFQProgram([]float64{0.5, 0.5}, 1e6)
	if err != nil {
		t.Fatalf("NewSTFQProgram: %v", err)
	}
	q, err := NewMultiBitTreeQueue(1 << 16)
	if err != nil {
		t.Fatalf("NewMultiBitTreeQueue: %v", err)
	}
	hw, err := NewHWRankStore(q, 1e-4, 1<<16)
	if err != nil {
		t.Fatalf("NewHWRankStore: %v", err)
	}
	d, err := NewPIFO(prog, hw)
	if err != nil {
		t.Fatalf("NewPIFO: %v", err)
	}
	for i := 0; i < 8; i++ {
		now := float64(i) * 1e-4
		if err := d.Enqueue(Packet{ID: i, Flow: i % 2, Size: 1000, Arrival: now}, now); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := d.Dequeue(1.0); err != nil {
			t.Fatalf("Dequeue %d: %v", i, err)
		}
	}

	sp, err := NewSPPIFO(4, 1024)
	if err != nil {
		t.Fatalf("NewSPPIFO: %v", err)
	}
	if sp.Exact() {
		t.Fatal("SP-PIFO claims exactness")
	}
	for i := 0; i < 16; i++ {
		if err := sp.Insert(i%7*100, i); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := sp.ExtractMin(); err != nil {
			t.Fatalf("ExtractMin: %v", err)
		}
	}

	tree, err := NewHPFQ([]float64{0.75, 0.25},
		[]map[int]float64{{0: 1, 1: 1}, {2: 1}}, 1e6)
	if err != nil {
		t.Fatalf("NewHPFQ: %v", err)
	}
	for i := 0; i < 6; i++ {
		now := float64(i) * 1e-4
		if err := tree.Enqueue(Packet{ID: i, Flow: i % 3, Size: 500, Arrival: now}, now); err != nil {
			t.Fatalf("tree Enqueue: %v", err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		p, err := tree.Dequeue(1.0)
		if err != nil {
			t.Fatalf("tree Dequeue: %v", err)
		}
		seen[p.Flow] = true
	}
	if len(seen) != 3 {
		t.Fatalf("tree served flows %v, want all 3", seen)
	}
}

// TestFacadeDynamicQueue verifies the dynamic-update surface through
// the public API: the capability probe on a MinTagQueue, the sorter's
// Remove/Rerank, and the ModeHardware refusal.
func TestFacadeDynamicQueue(t *testing.T) {
	q, err := NewMultiBitTreeQueue(4096)
	if err != nil {
		t.Fatalf("NewMultiBitTreeQueue: %v", err)
	}
	dq, ok := q.(DynamicQueue)
	if !ok {
		t.Fatal("multi-bit tree queue does not expose the DynamicQueue capability")
	}
	if err := dq.Insert(300, 1); err != nil {
		t.Fatal(err)
	}
	if found, err := dq.Rerank(300, 1, 5); err != nil || !found {
		t.Fatalf("Rerank = %v, %v", found, err)
	}
	if e, err := dq.ExtractMin(); err != nil || e.Tag != 5 {
		t.Fatalf("ExtractMin after rerank = %+v, %v", e, err)
	}

	hw, err := NewSorter(SorterConfig{Capacity: 64, Mode: ModeHardware})
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Insert(10, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Remove(10, 1); !errors.Is(err, ErrNotEager) {
		t.Fatalf("hardware-mode Remove: %v, want ErrNotEager", err)
	}
}
