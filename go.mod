module wfqsort

go 1.22
